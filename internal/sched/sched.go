// Package sched implements the scheduling policies of Section 5: plain
// FCFS, EASY backfilling with either FCFS or shortest-predicted-job-first
// (SJBF) backfill order, and — as the related-work baseline — conservative
// backfilling. Policies are pure decision functions: given the instant,
// the machine state and the FCFS waiting queue, Pick returns the single
// next job to start now, or nil. The simulation engine starts that job
// and asks again, so every decision is made against fully current state;
// restarting the scan after each start is equivalent to the textbook
// one-pass EASY scan (starting a feasible backfill job never moves the
// head job's shadow time) and keeps the policies trivially testable.
package sched

import (
	"sort"

	"repro/internal/job"
	"repro/internal/platform"
)

// Policy selects the next waiting job to start.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick returns a waiting job to start at instant now, or nil if none
	// may start. queue is in FCFS order and must not be mutated.
	Pick(now int64, m *platform.Machine, queue []*job.Job) *job.Job
}

// Order is the backfill scan order inside EASY.
type Order int

const (
	// FCFSOrder scans backfill candidates in arrival order (plain EASY).
	FCFSOrder Order = iota
	// SJBFOrder scans candidates shortest-predicted-first (EASY-SJBF,
	// Tsafrir et al. [24]).
	SJBFOrder
)

// String names the order.
func (o Order) String() string {
	if o == SJBFOrder {
		return "SJBF"
	}
	return "FCFS"
}

// FCFS runs jobs strictly in arrival order with no backfilling: the head
// job starts as soon as it fits; nothing overtakes it.
type FCFS struct{}

// Name implements Policy.
func (FCFS) Name() string { return "FCFS" }

// Pick implements Policy.
func (FCFS) Pick(_ int64, m *platform.Machine, queue []*job.Job) *job.Job {
	if len(queue) == 0 {
		return nil
	}
	if queue[0].Procs <= m.Free() {
		return queue[0]
	}
	return nil
}

// EASY is aggressive backfilling with a single reservation: the queue
// head gets a reservation at its shadow time, and any other job may jump
// it if it fits now and either (a) is predicted to finish before the
// shadow time or (b) uses only processors left over at the shadow time.
type EASY struct {
	// Backfill is the candidate scan order.
	Backfill Order
}

// Name implements Policy.
func (e EASY) Name() string {
	if e.Backfill == SJBFOrder {
		return "EASY-SJBF"
	}
	return "EASY"
}

// Pick implements Policy.
func (e EASY) Pick(now int64, m *platform.Machine, queue []*job.Job) *job.Job {
	if len(queue) == 0 {
		return nil
	}
	head := queue[0]
	free := m.Free()
	if head.Procs <= free {
		return head
	}
	if len(queue) == 1 {
		return nil
	}
	shadow, extra := m.Reservation(now, head.Procs)
	candidates := queue[1:]
	if e.Backfill == SJBFOrder {
		candidates = append([]*job.Job(nil), candidates...)
		sort.SliceStable(candidates, func(a, b int) bool {
			ca, cb := candidates[a], candidates[b]
			if ca.Prediction != cb.Prediction {
				return ca.Prediction < cb.Prediction
			}
			if ca.Submit != cb.Submit {
				return ca.Submit < cb.Submit
			}
			return ca.ID < cb.ID
		})
	}
	for _, c := range candidates {
		if c.Procs > free {
			continue
		}
		if now+c.Prediction <= shadow || c.Procs <= extra {
			return c
		}
	}
	return nil
}

// Conservative is conservative backfilling: every queued job holds a
// reservation computed in arrival order against the predicted
// availability profile, and a job starts only when its reservation is
// now. Reservations are recomputed from scratch at every scheduling
// event (the "recompute at each new event" variant the paper describes),
// which lets completions earlier than predicted compress the schedule.
type Conservative struct{}

// Name implements Policy.
func (Conservative) Name() string { return "Conservative" }

// Pick implements Policy.
func (Conservative) Pick(now int64, m *platform.Machine, queue []*job.Job) *job.Job {
	if len(queue) == 0 {
		return nil
	}
	profile := platform.ProfileFromMachine(m, now)
	for _, c := range queue {
		duration := c.Prediction
		if duration < 1 {
			duration = 1
		}
		start := profile.FindStart(now, duration, c.Procs)
		if start == now {
			return c
		}
		if start < platform.InfiniteTime {
			profile.Reserve(start, start+duration, c.Procs)
		}
	}
	return nil
}
