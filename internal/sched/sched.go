// Package sched implements the scheduling policies of Section 5: plain
// FCFS, EASY backfilling with either FCFS or shortest-predicted-job-first
// (SJBF) backfill order, and — as the related-work baseline — conservative
// backfilling. Given the instant, the machine state and the FCFS waiting
// queue, Pick returns the single next job to start now, or nil. The
// simulation engine starts that job and asks again, so every decision is
// made against fully current state; restarting the scan after each start
// is equivalent to the textbook one-pass EASY scan (starting a feasible
// backfill job never moves the head job's shadow time).
//
// Policies are stateful scheduling sessions: the engine drives them
// through lifecycle hooks (OnSubmit/OnStart/OnFinish/OnExpiry, mirroring
// predict.Predictor) so they can maintain persistent acceleration
// structures — a prediction-ordered backfill index for EASY-SJBF, a
// cached shadow reservation for EASY, and a persistent availability
// profile plus per-instant decision cache for Conservative — instead of
// recomputing everything from scratch at every Pick. The from-scratch
// formulations survive as ReferenceEASY and ReferenceConservative (see
// reference.go); property tests assert the incremental policies make
// decision-for-decision identical schedules.
//
// A policy instance must either be driven through its hooks in lockstep
// with the machine (what sim.Run does) or be used fresh for a single
// decision; Pick detects a machine swap and desynchronized queues and
// falls back to a full rebuild, but it cannot detect arbitrary external
// mutation of a queue it has already indexed.
//
// # Determinism invariants
//
// Every Pick decision is a pure function of (instant, machine state,
// queue order) — no map iteration, randomness or wall clock — and every
// ordering a policy maintains breaks ties on the unique job ID (the
// SJBF index orders by (prediction, submit, ID); the machine's release
// order by (instant, ID)), so "equal" jobs cannot reorder between runs.
// Routers (router.go) extend the same contract to the federated layer:
// Route is a pure function of the job and the per-cluster states, and
// the engine consults it exactly once per job in trace submission
// order. The parallel sharded driver preserves that sequencing — the
// router remains a global serialization point even when every cluster
// runs on its own goroutine — which is what makes sharded runs
// byte-identical to sequential ones (see the sim package comment).
//
// # Checkpointing versus replay
//
// Policy sessions are deliberately not snapshottable: the acceleration
// structures hold pointers into live *job.Job values shared with the
// machine and the engine's event queue, so a faithful deep copy would
// have to remap every pointer across three layers in one consistent
// cut — a copy contract each policy would then have to maintain
// forever. Consumers that need a hypothetical fork (the schedd
// daemon's what-if endpoint) instead rebuild a fresh policy session by
// replaying the command history through a new engine: determinism
// (above) guarantees the replica reaches the identical decision state,
// the cost is O(history) compute instead of O(state) copying, and the
// live session is never perturbed. That trade is why Policy has
// lifecycle hooks but no Clone.
package sched

import (
	"slices"
	"sort"

	"repro/internal/job"
	"repro/internal/platform"
)

// Policy selects the next waiting job to start and observes the job
// lifecycle to keep its internal acceleration structures current.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick returns a waiting job to start at instant now, or nil if none
	// may start. queue is in FCFS order and must not be mutated.
	Pick(now int64, m *platform.Machine, queue []*job.Job) *job.Job
	// OnSubmit tells the policy a job joined the waiting queue (its
	// prediction is already set).
	OnSubmit(j *job.Job, now int64)
	// OnStart tells the policy a previously picked job began execution.
	OnStart(j *job.Job, now int64)
	// OnFinish tells the policy a running job completed.
	OnFinish(j *job.Job, now int64)
	// OnExpiry tells the policy a running job outlived its prediction and
	// a correction installed a new one (j.Prediction is already updated).
	OnExpiry(j *job.Job, now int64)
	// OnCancel tells the policy a job left the system without completing:
	// removed from the waiting queue, or killed while running (j.Started
	// distinguishes the two). The engine has already updated the queue
	// and the machine.
	OnCancel(j *job.Job, now int64)
	// OnCapacityChange tells the policy the machine's realized or
	// eventual capacity changed — a node drain or restore, or a pending
	// drain absorbing a completion's processors — so any cached
	// availability view is stale.
	OnCapacityChange(now int64, m *platform.Machine)
}

// noHooks provides empty lifecycle hooks for stateless policies.
type noHooks struct{}

func (noHooks) OnSubmit(*job.Job, int64)                  {}
func (noHooks) OnStart(*job.Job, int64)                   {}
func (noHooks) OnFinish(*job.Job, int64)                  {}
func (noHooks) OnExpiry(*job.Job, int64)                  {}
func (noHooks) OnCancel(*job.Job, int64)                  {}
func (noHooks) OnCapacityChange(int64, *platform.Machine) {}

// Order is the backfill scan order inside EASY.
type Order int

const (
	// FCFSOrder scans backfill candidates in arrival order (plain EASY).
	FCFSOrder Order = iota
	// SJBFOrder scans candidates shortest-predicted-first (EASY-SJBF,
	// Tsafrir et al. [24]).
	SJBFOrder
)

// String names the order.
func (o Order) String() string {
	if o == SJBFOrder {
		return "SJBF"
	}
	return "FCFS"
}

// predLess is the SJBF scan order: shortest prediction first, with
// submission time and job ID as deterministic tie-breakers. Predictions
// are fixed while a job waits (corrections only touch running jobs), so
// an index sorted by predLess stays sorted until jobs enter or leave.
func predLess(a, b *job.Job) bool {
	if a.Prediction != b.Prediction {
		return a.Prediction < b.Prediction
	}
	if a.Submit != b.Submit {
		return a.Submit < b.Submit
	}
	return a.ID < b.ID
}

// FCFS runs jobs strictly in arrival order with no backfilling: the head
// job starts as soon as it fits; nothing overtakes it. It is stateless.
type FCFS struct{ noHooks }

// NewFCFS returns the FCFS policy.
func NewFCFS() FCFS { return FCFS{} }

// Name implements Policy.
func (FCFS) Name() string { return "FCFS" }

// Pick implements Policy.
func (FCFS) Pick(_ int64, m *platform.Machine, queue []*job.Job) *job.Job {
	if len(queue) == 0 {
		return nil
	}
	if queue[0].Procs <= m.Free() {
		return queue[0]
	}
	return nil
}

// EASY is aggressive backfilling with a single reservation: the queue
// head gets a reservation at its shadow time, and any other job may jump
// it if it fits now and either (a) is predicted to finish before the
// shadow time or (b) uses only processors left over at the shadow time.
//
// The implementation is incremental: the shadow reservation is computed
// once per (instant, head) and updated in O(1) as backfill jobs start
// (a feasible backfill start never moves the shadow; it only consumes
// extra processors when it outlives the shadow), and the SJBF candidate
// order is a persistent sorted index maintained by the lifecycle hooks
// instead of a fresh copy-and-sort of the queue at every Pick.
type EASY struct {
	// Backfill is the candidate scan order.
	Backfill Order

	m *platform.Machine // machine the cached state mirrors

	// index holds the queued jobs in predLess order (SJBF only).
	// indexOK reports whether the hooks have kept it in lockstep with
	// the queue; when false (or on a length mismatch) Pick rebuilds it.
	index   []*job.Job
	indexOK bool

	// Cached head reservation, valid for (resNow, resHead) while resOK.
	resOK     bool
	resNow    int64
	resHead   int64
	resShadow int64
	resExtra  int64
}

// NewEASY returns an EASY policy with the given backfill order.
func NewEASY(order Order) *EASY { return &EASY{Backfill: order} }

// Name implements Policy.
func (e *EASY) Name() string {
	if e.Backfill == SJBFOrder {
		return "EASY-SJBF"
	}
	return "EASY"
}

// reset discards all incremental state when the policy meets a new
// machine (a fresh simulation reusing the policy value).
func (e *EASY) reset(m *platform.Machine) {
	e.m = m
	e.index = e.index[:0]
	e.indexOK = true
	e.resOK = false
}

func (e *EASY) rebuildIndex(queue []*job.Job) {
	e.index = append(e.index[:0], queue...)
	slices.SortFunc(e.index, func(a, b *job.Job) int {
		if predLess(a, b) {
			return -1
		}
		if predLess(b, a) {
			return 1
		}
		return 0
	})
	e.indexOK = true
}

// Pick implements Policy.
func (e *EASY) Pick(now int64, m *platform.Machine, queue []*job.Job) *job.Job {
	if m != e.m {
		e.reset(m)
	}
	if len(queue) == 0 {
		return nil
	}
	head := queue[0]
	free := m.Free()
	if head.Procs <= free {
		return head
	}
	if len(queue) == 1 || free == 0 {
		// Every job needs at least one processor, so nothing can
		// backfill into an empty pool; skip the reservation entirely.
		return nil
	}
	if !e.resOK || e.resNow != now || e.resHead != head.ID {
		e.resShadow, e.resExtra = m.Reservation(now, head.Procs)
		e.resNow, e.resHead, e.resOK = now, head.ID, true
	}
	shadow, extra := e.resShadow, e.resExtra
	if e.Backfill == SJBFOrder {
		if !e.indexOK || len(e.index) != len(queue) {
			e.rebuildIndex(queue)
		}
		// The index is sorted by prediction (predLess), so the jobs
		// predicted to complete by the shadow time form a prefix whose
		// end a binary search finds; within it any job narrow enough to
		// fit backfills. Past the prefix, only jobs narrow enough to fit
		// inside the extra processors qualify — and when there are none,
		// the whole suffix scan vanishes. The split preserves the exact
		// first-match-in-index-order semantics of the single scan: every
		// prefix position precedes every suffix position, and the
		// admission test is equivalent on each side of the cutoff.
		cutoff := shadow - now
		k := sort.Search(len(e.index), func(i int) bool { return e.index[i].Prediction > cutoff })
		for _, c := range e.index[:k] {
			if c != head && c.Procs <= free {
				return c
			}
		}
		lim := extra
		if free < lim {
			lim = free
		}
		if lim > 0 {
			for _, c := range e.index[k:] {
				if c != head && c.Procs <= lim {
					return c
				}
			}
		}
		return nil
	}
	for _, c := range queue[1:] {
		if c.Procs > free {
			continue
		}
		if now+c.Prediction <= shadow || c.Procs <= extra {
			return c
		}
	}
	return nil
}

// OnSubmit implements Policy: a new waiting job enters the SJBF index.
// The shadow reservation is untouched — it depends only on the running
// jobs and the head's width, neither of which a submission changes.
func (e *EASY) OnSubmit(j *job.Job, _ int64) {
	if e.Backfill != SJBFOrder || !e.indexOK {
		return
	}
	i := sort.Search(len(e.index), func(i int) bool { return predLess(j, e.index[i]) })
	e.index = append(e.index, nil)
	copy(e.index[i+1:], e.index[i:])
	e.index[i] = j
}

// dropFromIndex removes a job leaving the waiting queue from the SJBF
// index, marking the index desynchronized if the job is unknown.
func (e *EASY) dropFromIndex(j *job.Job) {
	if e.Backfill != SJBFOrder || !e.indexOK {
		return
	}
	i := sort.Search(len(e.index), func(i int) bool { return !predLess(e.index[i], j) })
	if i < len(e.index) && e.index[i] == j {
		e.index = append(e.index[:i], e.index[i+1:]...)
	} else {
		e.indexOK = false // unknown job: the index lost sync with the queue
	}
}

// OnStart implements Policy: the started job leaves the SJBF index, and
// the cached shadow reservation is updated in O(1) — a backfill start at
// the cached instant never moves the shadow (it either completes before
// it or fits in the extra processors), it only consumes extra capacity
// when it outlives the shadow.
func (e *EASY) OnStart(j *job.Job, now int64) {
	e.dropFromIndex(j)
	if !e.resOK {
		return
	}
	if now != e.resNow || j.ID == e.resHead {
		e.resOK = false
		return
	}
	if now+j.Prediction <= e.resShadow {
		return
	}
	e.resExtra -= j.Procs
	if e.resExtra < 0 {
		// The start was not a feasible backfill against the cached
		// reservation (hooks driven outside the usual Pick loop).
		e.resOK = false
	}
}

// OnFinish implements Policy: a completion frees processors, so the
// shadow may move earlier — drop the cached reservation.
func (e *EASY) OnFinish(*job.Job, int64) { e.resOK = false }

// OnExpiry implements Policy: a corrected prediction moves a running
// job's release instant, so the cached reservation is stale.
func (e *EASY) OnExpiry(*job.Job, int64) { e.resOK = false }

// OnCancel implements Policy: a canceled waiting job leaves the SJBF
// index; either way (queued removal or running kill) the availability
// the cached reservation was computed from changed.
func (e *EASY) OnCancel(j *job.Job, _ int64) {
	if !j.Started {
		e.dropFromIndex(j)
	}
	e.resOK = false
}

// OnCapacityChange implements Policy: the shadow reservation depends on
// the capacity step function, so it must be recomputed.
func (e *EASY) OnCapacityChange(int64, *platform.Machine) { e.resOK = false }

// Conservative is conservative backfilling: every queued job holds a
// reservation computed in arrival order against the predicted
// availability profile, and a job starts only when its reservation is
// now. Reservations are recomputed at every scheduling event (the
// "recompute at each new event" variant the paper describes), which lets
// completions earlier than predicted compress the schedule.
//
// The implementation is incremental along two axes. Across events, the
// running jobs' availability profile persists: starts reserve into it,
// early completions release the unused reservation tail
// (platform.Profile.Release), corrections extend it, and the origin
// advances with the clock (platform.Profile.Advance) so dead history is
// compacted away — no per-event ProfileFromMachine rebuild. Within an
// event, the queue scan runs once against a scratch copy of that
// profile and its decisions are cached: the engine's repeated Pick calls
// after each started job pop from the cache in O(1), because starting a
// job it picked converts the job's queued reservation into an identical
// running reservation and therefore changes nothing the remaining
// decisions depend on.
type Conservative struct {
	m *platform.Machine

	// base carries the running jobs' reservations from the current
	// origin onward. ends tracks each running job's live reservation;
	// releases is a lazy min-heap over predicted ends used to find
	// overdue jobs (predicted end <= now) without scanning all of them.
	base     *platform.Profile
	ends     map[int64]resv
	releases releaseHeap

	// scratch is the per-instant scan profile: base, plus [now, now+1)
	// overlays for overdue running jobs (platform.ReleaseInstant
	// semantics), plus the queued jobs' reservations in arrival order.
	scratch *platform.Profile

	// cache lists the jobs whose reservation is exactly now, in queue
	// order; cacheIdx advances as they start.
	cacheOK  bool
	cacheNow int64
	cache    []*job.Job
	cacheIdx int

	// degraded is set while the machine carries a pending drain: the
	// drain absorbs predicted releases in release order, so per-job
	// reservations no longer compose and the base profile is rebuilt
	// from the machine's effective view at every Pick (the same
	// construction the reference policy uses) until the drain settles.
	degraded bool

	overdue []heapEntry // reusable scratch for overdue collection
}

type resv struct {
	end   int64
	procs int64
}

// NewConservative returns an incremental conservative backfilling policy.
func NewConservative() *Conservative {
	return &Conservative{ends: make(map[int64]resv)}
}

// Name implements Policy.
func (*Conservative) Name() string { return "Conservative" }

// desync forces a full rebuild from the machine at the next Pick.
func (c *Conservative) desync() {
	c.m = nil
	c.cacheOK = false
}

// resync rebuilds all incremental state from the machine.
func (c *Conservative) resync(m *platform.Machine, now int64) {
	c.m = m
	c.degraded = m.PendingDrain() > 0
	if c.base == nil {
		c.base = platform.NewProfile(now, m.Total())
		c.scratch = platform.NewProfile(now, m.Total())
	}
	clear(c.ends)
	c.releases = c.releases[:0]
	if c.degraded {
		// The effective view already folds overdue predictions and
		// drain absorption in; ends/releases stay empty so the overdue
		// overlay in rescan is a no-op.
		m.FillAvailability(c.base, now)
	} else {
		c.base.Reset(now, m.Capacity())
		for _, j := range m.Running() {
			c.track(j, now)
		}
	}
	c.cacheOK = false
}

// track records a running job's reservation in the base profile. An
// already overdue prediction (end <= now) reserves nothing — the scan
// overlay handles it, mirroring platform.ReleaseInstant.
func (c *Conservative) track(j *job.Job, now int64) {
	end := j.PredictedEnd()
	if end > now {
		c.base.Reserve(now, end, j.Procs)
	}
	c.ends[j.ID] = resv{end: end, procs: j.Procs}
	c.releases.push(heapEntry{at: end, id: j.ID})
}

// Pick implements Policy.
func (c *Conservative) Pick(now int64, m *platform.Machine, queue []*job.Job) *job.Job {
	if m != c.m || c.degraded || len(c.ends) != m.RunningCount() {
		c.resync(m, now)
	}
	c.base.Advance(now)
	if len(queue) == 0 {
		return nil
	}
	if !c.cacheOK || c.cacheNow != now {
		c.rescan(now, queue)
	}
	if c.cacheIdx < len(c.cache) {
		return c.cache[c.cacheIdx]
	}
	return nil
}

// rescan recomputes the queued jobs' reservations for this instant and
// fills the decision cache.
func (c *Conservative) rescan(now int64, queue []*job.Job) {
	c.scratch.CopyFrom(c.base)
	// Overlay overdue running jobs: their processors are demonstrably
	// busy at now and predicted to release "any moment", i.e. at now+1.
	c.overdue = c.overdue[:0]
	for len(c.releases) > 0 {
		top := c.releases[0]
		r, live := c.ends[top.id]
		if !live || r.end != top.at {
			c.releases.pop() // superseded by a finish or a correction
			continue
		}
		if top.at > now {
			break
		}
		c.releases.pop()
		c.overdue = append(c.overdue, top)
	}
	for _, o := range c.overdue {
		c.releases.push(o) // keep for later events at this instant
		c.scratch.Reserve(now, now+1, c.ends[o.id].procs)
	}
	c.cache = c.cache[:0]
	for _, j := range queue {
		c.scanJob(j, now)
	}
	c.cacheNow = now
	c.cacheIdx = 0
	c.cacheOK = true
}

// scanJob computes one queued job's reservation against the scratch
// profile, appending it to the decision cache when it may start now.
func (c *Conservative) scanJob(j *job.Job, now int64) {
	duration := j.Prediction
	if duration < 1 {
		duration = 1
	}
	start := c.scratch.FindStart(now, duration, j.Procs)
	if start == now {
		c.cache = append(c.cache, j)
	}
	if start < platform.InfiniteTime {
		c.scratch.Reserve(start, start+duration, j.Procs)
	}
}

// OnSubmit implements Policy. A job submitted at the cached instant
// scans last in arrival order, so the reservations already computed are
// unaffected: extend the cached scan instead of discarding it.
func (c *Conservative) OnSubmit(j *job.Job, now int64) {
	if c.cacheOK && c.cacheNow == now {
		c.scanJob(j, now)
		return
	}
	c.cacheOK = false
}

// OnStart implements Policy: the start converts the job's queued
// reservation (already in scratch) into an identical running reservation
// in base, so when it is the cached decision the rest of the cache stays
// valid.
func (c *Conservative) OnStart(j *job.Job, now int64) {
	if c.cacheOK && c.cacheNow == now && c.cacheIdx < len(c.cache) && c.cache[c.cacheIdx] == j {
		c.cacheIdx++
	} else {
		c.cacheOK = false
	}
	if c.m == nil {
		return // never synced; the next Pick rebuilds from the machine
	}
	if now < c.base.Start() {
		c.desync() // clock moved backwards: hooks driven out of order
		return
	}
	if _, dup := c.ends[j.ID]; dup {
		c.desync() // already tracked (e.g. via resync): hooks out of step
		return
	}
	c.track(j, now)
}

// OnFinish implements Policy: release the unused tail of the job's
// reservation so the availability timeline compresses without a rebuild.
func (c *Conservative) OnFinish(j *job.Job, now int64) {
	c.cacheOK = false
	r, ok := c.ends[j.ID]
	if !ok {
		return
	}
	delete(c.ends, j.ID)
	if c.m == nil {
		return
	}
	if now < c.base.Start() {
		c.desync()
		return
	}
	if r.end > now {
		c.base.Release(now, r.end, r.procs)
	}
	// r.end <= now: the reservation already lapsed (overdue prediction);
	// the stale heap entry is discarded lazily.
}

// OnExpiry implements Policy: extend the job's reservation to its
// corrected predicted end.
func (c *Conservative) OnExpiry(j *job.Job, now int64) {
	c.cacheOK = false
	r, ok := c.ends[j.ID]
	if !ok {
		return
	}
	if c.m == nil {
		return
	}
	if now < c.base.Start() {
		c.desync()
		return
	}
	from := r.end
	if from < now {
		from = now
	}
	end := j.PredictedEnd()
	if end > from {
		c.base.Reserve(from, end, j.Procs)
	}
	c.ends[j.ID] = resv{end: end, procs: j.Procs}
	c.releases.push(heapEntry{at: end, id: j.ID})
}

// OnCancel implements Policy. A canceled waiting job invalidates every
// later queued reservation; a killed running job releases its
// reservation exactly like an early completion.
func (c *Conservative) OnCancel(j *job.Job, now int64) {
	if j.Started {
		c.OnFinish(j, now)
		return
	}
	c.cacheOK = false
}

// OnCapacityChange implements Policy: the base profile's capacity
// ceiling (and, under a pending drain, the shape of every future
// release) changed, so all incremental state is rebuilt at the next
// Pick.
func (c *Conservative) OnCapacityChange(int64, *platform.Machine) { c.desync() }

// heapEntry is one (predicted end, job ID) pair in the lazy release heap.
type heapEntry struct {
	at int64
	id int64
}

// releaseHeap is a binary min-heap by release instant. Entries are lazy:
// a finish or correction leaves the old entry in place, and consumers
// validate entries against the ends map before trusting them.
type releaseHeap []heapEntry

func (h *releaseHeap) push(e heapEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].at <= s[i].at {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *releaseHeap) pop() heapEntry {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && s[left].at < s[smallest].at {
			smallest = left
		}
		if right < n && s[right].at < s[smallest].at {
			smallest = right
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}
