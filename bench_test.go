// Package repro's root benchmark harness regenerates every table and
// figure of the paper's evaluation (Section 6) as testing.B benchmarks.
// Each benchmark runs the corresponding experiment on scaled-down preset
// workloads (see workload.Scaled), reports the headline quantities as
// custom benchmark metrics, and — under -v — logs the rendered table so
// the output can be compared against EXPERIMENTS.md.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro

import (
	"context"
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/correct"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/platform"
	"repro/internal/predict"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchJobs is the per-log scale used by the benchmarks: large enough for
// the learning curves and queue dynamics to develop, small enough for the
// full campaign to run in minutes.
const benchJobs = 3000

var (
	workloadCache   = map[string]*trace.Workload{}
	workloadCacheMu sync.Mutex
)

// benchWorkload returns a cached scaled preset (generation itself is
// benchmarked separately in the workload package).
func benchWorkload(b *testing.B, name string) *trace.Workload {
	b.Helper()
	workloadCacheMu.Lock()
	defer workloadCacheMu.Unlock()
	if w, ok := workloadCache[name]; ok {
		return w
	}
	cfg, err := workload.Scaled(name, benchJobs)
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	workloadCache[name] = w
	return w
}

func runTriple(b *testing.B, w *trace.Workload, tr core.Triple) *sim.Result {
	b.Helper()
	res, err := sim.Run(w, tr.Config())
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// --- Table 1: EASY vs EASY-Clairvoyant per log ------------------------

func benchmarkTable1(b *testing.B, log string) {
	w := benchWorkload(b, log)
	var easy, clair float64
	for i := 0; i < b.N; i++ {
		easy = metrics.AVEbsld(runTriple(b, w, core.EASY()))
		clair = metrics.AVEbsld(runTriple(b, w, core.ClairvoyantEASY()))
	}
	b.ReportMetric(easy, "EASY-AVEbsld")
	b.ReportMetric(clair, "Clairvoyant-AVEbsld")
	b.ReportMetric(100*(easy-clair)/easy, "reduction-%")
}

func BenchmarkTable1_KTHSP2(b *testing.B)      { benchmarkTable1(b, "KTH-SP2") }
func BenchmarkTable1_CTCSP2(b *testing.B)      { benchmarkTable1(b, "CTC-SP2") }
func BenchmarkTable1_SDSCSP2(b *testing.B)     { benchmarkTable1(b, "SDSC-SP2") }
func BenchmarkTable1_SDSCBLUE(b *testing.B)    { benchmarkTable1(b, "SDSC-BLUE") }
func BenchmarkTable1_Curie(b *testing.B)       { benchmarkTable1(b, "Curie") }
func BenchmarkTable1_Metacentrum(b *testing.B) { benchmarkTable1(b, "Metacentrum") }

// --- Tables 6 and 7 / Figure 3: the full campaign ----------------------

// campaignResults runs the full 130-triple campaign over all six presets
// once per benchmark invocation set (it is the expensive part shared by
// Table 6, Table 7 and Figure 3).
var (
	campaignOnce    sync.Once
	campaignResults []campaign.RunResult
	campaignErr     error
)

func benchCampaign(b *testing.B) []campaign.RunResult {
	b.Helper()
	campaignOnce.Do(func() {
		ws, err := campaign.DefaultWorkloads(benchJobs)
		if err != nil {
			campaignErr = err
			return
		}
		c := &campaign.Campaign{Workloads: ws}
		campaignResults, campaignErr = c.Run(context.Background())
	})
	if campaignErr != nil {
		b.Fatal(campaignErr)
	}
	return campaignResults
}

func BenchmarkTable6_CampaignOverview(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		results := benchCampaign(b)
		out = report.Table6(results)
	}
	b.Log("\n" + out)
}

func BenchmarkTable7_CrossValidation(b *testing.B) {
	var avgRed float64
	for i := 0; i < b.N; i++ {
		results := benchCampaign(b)
		cv, err := campaign.LeaveOneOut(results)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + report.Table7(cv, results))
		var sum float64
		var n int
		for _, c := range cv {
			if easy, ok := campaign.Score(results, c.HeldOut, core.EASY().Name()); ok && easy > 0 {
				sum += 100 * (easy - c.Score) / easy
				n++
			}
		}
		if n > 0 {
			avgRed = sum / float64(n)
		}
	}
	// The paper's headline: 28 % average AVEbsld reduction vs EASY.
	b.ReportMetric(avgRed, "avg-reduction-vs-EASY-%")
}

func BenchmarkFigure3_CrossLogCorrelation(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		results := benchCampaign(b)
		out = report.Figure3(results, "SDSC-BLUE", "Metacentrum")
	}
	b.Log("\n" + out)
}

// --- Table 8 / Figures 4 and 5: prediction analysis on Curie -----------

func predictionSeries(b *testing.B) []report.PredictionSeries {
	b.Helper()
	w := benchWorkload(b, "Curie")
	series, err := report.AnalyzePredictions(w)
	if err != nil {
		b.Fatal(err)
	}
	return series
}

func BenchmarkTable8_PredictionError(b *testing.B) {
	var series []report.PredictionSeries
	for i := 0; i < b.N; i++ {
		series = predictionSeries(b)
	}
	b.Log("\n" + report.Table8(series))
	for _, s := range series {
		switch s.Name {
		case "AVE2":
			b.ReportMetric(s.MAE, "AVE2-MAE")
			b.ReportMetric(s.MeanELoss, "AVE2-ELoss")
		case "E-Loss Regression":
			b.ReportMetric(s.MAE, "ELoss-MAE")
			b.ReportMetric(s.MeanELoss, "ELoss-ELoss")
		}
	}
}

func BenchmarkFigure4_ErrorECDF(b *testing.B) {
	var series []report.PredictionSeries
	for i := 0; i < b.N; i++ {
		series = predictionSeries(b)
	}
	b.Log("\n" + report.Figure4(series))
	// Headline shape: the E-Loss model under-predicts more than the
	// symmetric squared regression (its ECDF is shifted left).
	for _, s := range series {
		if s.Name == "E-Loss Regression" {
			e := metrics.NewECDF(s.Errors)
			b.ReportMetric(e.At(0), "ELoss-underprediction-frac")
		}
		if s.Name == "Squared Loss Regression" {
			e := metrics.NewECDF(s.Errors)
			b.ReportMetric(e.At(0), "Squared-underprediction-frac")
		}
	}
}

func BenchmarkFigure5_PredictedValueECDF(b *testing.B) {
	var series []report.PredictionSeries
	for i := 0; i < b.N; i++ {
		series = predictionSeries(b)
	}
	b.Log("\n" + report.Figure5(series))
	for _, s := range series {
		if s.Name == "E-Loss Regression" {
			e := metrics.NewECDF(s.Predicted)
			b.ReportMetric(e.At(3600), "ELoss-pred<=1h-frac")
		}
	}
}

// --- Scheduler hot path: Pick micro-benchmarks -------------------------

// schedPickState builds a saturated mid-simulation scheduler state from
// a preset workload: the machine is loaded to near capacity with running
// jobs (predictions = requested times, the regime with the widest
// availability profiles), and the following jobs form a large waiting
// queue in which nothing fits right now — the steady state a backlogged
// simulation spends most of its time in, where every Pick must scan to
// the end before declining.
func schedPickState(b *testing.B, log string, queued int) (*platform.Machine, []*job.Job, int64) {
	b.Helper()
	w := benchWorkload(b, log)
	m := platform.New(w.MaxProcs)
	queue := make([]*job.Job, 0, queued)
	i := 0
	// Load the machine until under 2% of its processors are idle. The
	// running jobs' predicted ends sit far beyond any instant the
	// benchmark loops will reach (the policies require a monotone clock,
	// so per-event benchmarks advance it), keeping the availability
	// profile stationary across iterations while preserving the preset's
	// spread of release times.
	for ; i < len(w.Jobs) && m.Free()*50 > m.Total(); i++ {
		j := job.FromSWF(&w.Jobs[i])
		j.Prediction = j.ClampPrediction(j.Request) + (1 << 40)
		if j.Procs > m.Free() {
			continue
		}
		j.Started = true
		j.Start = 0
		m.Start(j)
	}
	// Queue the rest, widening any job that would fit the residual idle
	// capacity so the state is the post-drain one the engine reaches
	// after starting everything startable.
	for ; i < len(w.Jobs) && len(queue) < queued; i++ {
		j := job.FromSWF(&w.Jobs[i])
		j.Prediction = j.ClampPrediction(j.Request)
		if j.Procs <= m.Free() {
			j.Procs += m.Free()
		}
		queue = append(queue, j)
	}
	if len(queue) < queued {
		b.Fatalf("workload %s too small: %d queued, want %d", log, len(queue), queued)
	}
	return m, queue, 1
}

// benchmarkPick measures the simulator's hottest pattern — Pick called
// again and again within one scheduling event (sim.Run re-asks after
// every started job) — for one policy on the large-queue preset. The
// incremental policies answer repeat calls from their caches; the
// reference policies rebuild availability state from scratch every time.
func benchmarkPick(b *testing.B, p sched.Policy) {
	m, queue, now := schedPickState(b, "Metacentrum", 1000)
	p.Pick(now, m, queue) // prime incremental state outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Pick(now, m, queue)
	}
	b.ReportMetric(float64(m.RunningCount()), "running-jobs")
	b.ReportMetric(float64(len(queue)), "queued-jobs")
}

// benchmarkPickPerEvent advances the clock one second per call so every
// Pick is the first of a fresh scheduling event: the incremental
// policies pay their per-event work (scratch copy + scan, or one shadow
// recomputation) while the reference policies pay the same full rebuild
// as always. Instants are strictly increasing — the incremental
// policies' documented monotone-clock contract — and stay far below the
// running jobs' predicted ends, so every iteration sees the same
// availability shape.
func benchmarkPickPerEvent(b *testing.B, p sched.Policy) {
	m, queue, now := schedPickState(b, "Metacentrum", 1000)
	p.Pick(now, m, queue)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Pick(now+int64(i)+1, m, queue)
	}
}

func BenchmarkSchedPickConservative(b *testing.B) {
	b.Run("incremental", func(b *testing.B) { benchmarkPick(b, sched.NewConservative()) })
	b.Run("reference", func(b *testing.B) { benchmarkPick(b, sched.ReferenceConservative{}) })
	b.Run("incremental-per-event", func(b *testing.B) { benchmarkPickPerEvent(b, sched.NewConservative()) })
	b.Run("reference-per-event", func(b *testing.B) { benchmarkPickPerEvent(b, sched.ReferenceConservative{}) })
}

func BenchmarkSchedPickEASYSJBF(b *testing.B) {
	b.Run("incremental", func(b *testing.B) { benchmarkPick(b, sched.NewEASY(sched.SJBFOrder)) })
	b.Run("reference", func(b *testing.B) { benchmarkPick(b, sched.ReferenceEASY{Backfill: sched.SJBFOrder}) })
	b.Run("incremental-per-event", func(b *testing.B) { benchmarkPickPerEvent(b, sched.NewEASY(sched.SJBFOrder)) })
	b.Run("reference-per-event", func(b *testing.B) { benchmarkPickPerEvent(b, sched.ReferenceEASY{Backfill: sched.SJBFOrder}) })
}

// BenchmarkSchedSimEndToEnd shows what the incremental hot path buys a
// whole simulation (policy cost plus everything else).
func BenchmarkSchedSimEndToEnd(b *testing.B) {
	w := benchWorkload(b, "KTH-SP2")
	run := func(mk func() sched.Policy) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := sim.Run(w, sim.Config{
					Policy:    mk(),
					Predictor: predict.NewUserAverage(2),
					Corrector: correct.Incremental{},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("conservative-incremental", run(func() sched.Policy { return sched.NewConservative() }))
	b.Run("conservative-reference", run(func() sched.Policy { return sched.ReferenceConservative{} }))
	b.Run("easy-sjbf-incremental", run(func() sched.Policy { return sched.NewEASY(sched.SJBFOrder) }))
	b.Run("easy-sjbf-reference", run(func() sched.Policy { return sched.ReferenceEASY{Backfill: sched.SJBFOrder} }))
}

// BenchmarkSchedSimStream measures the bounded-memory engine end to end
// against the same preset the preloading benchmark uses, collector
// attached — the steady-state cost of the lazy intake, the retirement
// sink and the one-pass metrics. allocs/op additionally guards the
// per-job overhead of the streaming path.
func BenchmarkSchedSimStream(b *testing.B) {
	w := benchWorkload(b, "KTH-SP2")
	run := func(mk func() sched.Policy) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				col := metrics.NewCollector()
				res, err := sim.RunStream(w.Name, w.MaxProcs, workload.FromWorkload(w), sim.Config{
					Policy:    mk(),
					Predictor: predict.NewUserAverage(2),
					Corrector: correct.Incremental{},
					Sink:      col,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Finished != col.Finished() {
					b.Fatalf("sink saw %d of %d finishes", col.Finished(), res.Finished)
				}
			}
		}
	}
	b.Run("easy-sjbf", run(func() sched.Policy { return sched.NewEASY(sched.SJBFOrder) }))
	b.Run("conservative", run(func() sched.Policy { return sched.NewConservative() }))
}

// BenchmarkSchedSimStreamGen runs generator-to-metrics fully streamed —
// the huge-synthetic pipeline at bench scale, nothing materialized.
func BenchmarkSchedSimStreamGen(b *testing.B) {
	cfg, err := workload.Scaled("huge-synthetic", benchJobs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := workload.NewGenSource(cfg)
		if err != nil {
			b.Fatal(err)
		}
		col := metrics.NewCollector()
		scfg := core.EASYPlusPlus().Config()
		scfg.Sink = col
		if _, err := sim.RunStream(cfg.Name, cfg.MaxProcs, g, scfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedSimRouted measures the federated engine end to end: the
// KTH-SP2 trace routed across three heterogeneous clusters, each running
// its own easy-sjbf-incremental session. Against the single-machine
// easy-sjbf-incremental baseline this prices the routing stage plus the
// N-cluster event-loop bookkeeping.
func BenchmarkSchedSimRouted(b *testing.B) {
	w := benchWorkload(b, "KTH-SP2")
	clusters := []platform.Cluster{
		{Name: "big", Procs: w.MaxProcs},
		{Name: "fast", Procs: w.MaxProcs / 2, Speed: 1.5},
		{Name: "slow", Procs: w.MaxProcs / 2, Speed: 0.5},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sim.RunFederated(w, sim.FederatedConfig{
			Clusters: clusters,
			Router:   &sched.RoundRobin{},
			Session: func() sim.Config {
				return sim.Config{
					Policy:    sched.NewEASY(sched.SJBFOrder),
					Predictor: predict.NewUserAverage(2),
					Corrector: correct.Incremental{},
				}
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Finished != len(w.Jobs) {
			b.Fatalf("finished %d of %d jobs", res.Finished, len(w.Jobs))
		}
	}
}

// BenchmarkSchedSimStreamParallel prices the sharded federated streaming
// driver against its sequential twin on the same three-cluster platform:
// "sequential" is the single-goroutine federated stream, "shards-1" the
// parallel machinery with one shard (pure coordination overhead, results
// byte-identical by the differential suite), "shards-4" one event-loop
// goroutine per cluster. All three produce identical global metrics; the
// benchmark isolates what the router boundary and shard handoff cost.
func BenchmarkSchedSimStreamParallel(b *testing.B) {
	w := benchWorkload(b, "KTH-SP2")
	clusters := []platform.Cluster{
		{Name: "big", Procs: w.MaxProcs},
		{Name: "fast", Procs: w.MaxProcs / 2, Speed: 1.5},
		{Name: "slow", Procs: w.MaxProcs / 2, Speed: 0.5},
	}
	run := func(shards int) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fed := metrics.NewFederated(len(clusters))
				res, err := sim.RunFederatedStream(w.Name, workload.FromWorkload(w), sim.FederatedConfig{
					Clusters: clusters,
					Router:   &sched.RoundRobin{},
					Shards:   shards,
					Sink:     fed,
					Session: func() sim.Config {
						return sim.Config{
							Policy:    sched.NewEASY(sched.SJBFOrder),
							Predictor: predict.NewUserAverage(2),
							Corrector: correct.Incremental{},
						}
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				if g := fed.Global(); res.Finished != g.Finished() {
					b.Fatalf("sink saw %d of %d finishes", g.Finished(), res.Finished)
				}
			}
		}
	}
	// The "=" naming (not "shards-1") keeps benchdiff's GOMAXPROCS
	// suffix stripping from collapsing the sub-benchmarks into one
	// baseline entry.
	b.Run("sequential", run(0))
	b.Run("shards=1", run(1))
	b.Run("shards=4", run(4))
}

// BenchmarkSchedSimStreamHugeThroughput is the headline throughput
// number: the full 1M-job huge-synthetic preset, generator to metrics,
// nothing materialized, reported as jobs/s. One iteration simulates a
// million jobs, so expect a single iteration per benchtime second; the
// jobs/s metric (not ns/op) is the figure docs/PERFORMANCE.md quotes.
func BenchmarkSchedSimStreamHugeThroughput(b *testing.B) {
	cfg, err := workload.Preset("huge-synthetic")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var finished int
	for i := 0; i < b.N; i++ {
		g, err := workload.NewGenSource(cfg)
		if err != nil {
			b.Fatal(err)
		}
		col := metrics.NewCollector()
		scfg := core.EASYPlusPlus().Config()
		scfg.Sink = col
		res, err := sim.RunStream(cfg.Name, cfg.MaxProcs, g, scfg)
		if err != nil {
			b.Fatal(err)
		}
		finished = res.Finished
	}
	b.ReportMetric(float64(finished)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// --- Ablations (DESIGN.md §5) ------------------------------------------

// BenchmarkAblationBackfillOrder isolates SJBF vs FCFS backfill order
// with clairvoyant predictions (the cleanest view of the ordering
// effect, Table 6's two clairvoyant columns).
func BenchmarkAblationBackfillOrder(b *testing.B) {
	w := benchWorkload(b, "SDSC-SP2")
	var fcfs, sjbf float64
	for i := 0; i < b.N; i++ {
		fcfs = metrics.AVEbsld(runTriple(b, w, core.ClairvoyantEASY()))
		sjbf = metrics.AVEbsld(runTriple(b, w, core.ClairvoyantSJBF()))
	}
	b.ReportMetric(fcfs, "FCFS-order-AVEbsld")
	b.ReportMetric(sjbf, "SJBF-order-AVEbsld")
}

// BenchmarkAblationCorrection compares the three correction mechanisms
// under the same AVE2 predictor and SJBF order.
func BenchmarkAblationCorrection(b *testing.B) {
	w := benchWorkload(b, "KTH-SP2")
	correctors := map[string]correct.Corrector{
		"Requested":   correct.RequestedTime{},
		"Incremental": correct.Incremental{},
		"Doubling":    correct.RecursiveDoubling{},
	}
	scores := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for name, corr := range correctors {
			tr := core.Triple{Predictor: core.PredAve2, Corrector: corr, Backfill: sched.SJBFOrder}
			scores[name] = metrics.AVEbsld(runTriple(b, w, tr))
		}
	}
	for name, s := range scores {
		b.ReportMetric(s, name+"-AVEbsld")
	}
}

// BenchmarkAblationLoss compares the asymmetric E-Loss against the
// symmetric squared loss inside the same triple.
func BenchmarkAblationLoss(b *testing.B) {
	w := benchWorkload(b, "CTC-SP2")
	var eloss, squared float64
	for i := 0; i < b.N; i++ {
		eloss = metrics.AVEbsld(runTriple(b, w, core.PaperBest()))
		tr := core.PaperBest()
		tr.Loss = ml.SquaredLoss
		squared = metrics.AVEbsld(runTriple(b, w, tr))
	}
	b.ReportMetric(eloss, "ELoss-AVEbsld")
	b.ReportMetric(squared, "SquaredLoss-AVEbsld")
}

// BenchmarkAblationWeights sweeps the five Table-3 weighting schemes with
// the E-Loss branch structure fixed.
func BenchmarkAblationWeights(b *testing.B) {
	w := benchWorkload(b, "CTC-SP2")
	scores := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, weight := range ml.Weightings {
			tr := core.PaperBest()
			tr.Loss = ml.Loss{Over: ml.Squared, Under: ml.Linear, Weight: weight}
			scores[weight.String()] = metrics.AVEbsld(runTriple(b, w, tr))
		}
	}
	for name, s := range scores {
		b.ReportMetric(s, name+"-AVEbsld")
	}
}

// BenchmarkAblationBasis compares the paper's degree-2 polynomial basis
// against a linear-only model over the same features, via progressive
// validation MAE (predict each job at submission, learn at completion).
func BenchmarkAblationBasis(b *testing.B) {
	w := benchWorkload(b, "KTH-SP2")
	var deg2, lin float64
	for i := 0; i < b.N; i++ {
		deg2 = progressiveMAE(w, 2)
		lin = progressiveMAE(w, 1)
	}
	b.ReportMetric(deg2, "degree2-MAE")
	b.ReportMetric(lin, "linear-MAE")
}

// progressiveMAE trains on-line over the workload in submission order
// (completions at submit+runtime) and returns the prediction MAE.
func progressiveMAE(w *trace.Workload, degree int) float64 {
	cfg := ml.DefaultConfig(ml.SquaredLoss)
	cfg.Degree = degree
	model := ml.NewModel(cfg)
	tracker := ml.NewTracker()
	var absSum float64
	n := 0
	type fin struct {
		at int64
		j  *job.Job
		x  []float64
	}
	var pending []fin
	for i := range w.Jobs {
		rec := &w.Jobs[i]
		j := job.FromSWF(rec)
		keep := pending[:0]
		for _, f := range pending {
			if f.at <= j.Submit {
				model.Observe(f.x, float64(f.j.Runtime), float64(f.j.Procs))
				tracker.OnFinish(f.j, f.at)
			} else {
				keep = append(keep, f)
			}
		}
		pending = keep
		x := tracker.Features(j, j.Submit)
		pred := j.ClampPrediction(int64(model.Predict(x)))
		diff := float64(pred - j.Runtime)
		if diff < 0 {
			diff = -diff
		}
		absSum += diff
		n++
		tracker.OnSubmit(j)
		j.Start = j.Submit
		tracker.OnStart(j)
		pending = append(pending, fin{at: j.Submit + j.Runtime, j: j, x: x})
	}
	return absSum / float64(n)
}
