package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/swf"
	"repro/internal/workload"
)

// TestUsageErrors pins the flag-combination validation: every
// contradictory combination exits 2 with a message naming the conflict.
func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"connect-without-replay", []string{"-connect", "http://x"}, "needs -replay"},
		{"connect+maxprocs", []string{"-connect", "http://x", "-replay", "t.swf", "-maxprocs", "64"}, "conflicts with -connect"},
		{"connect+trace", []string{"-connect", "http://x", "-replay", "t.swf", "-trace", "t.jsonl"}, "conflicts with -connect"},
		{"replay-without-connect", []string{"-replay", "t.swf"}, "needs -connect"},
		{"shutdown-without-connect", []string{"-shutdown"}, "needs -connect"},
		{"session-without-connect", []string{"-session", "s"}, "needs -connect"},
		{"no-maxprocs", nil, "-maxprocs must be positive"},
		{"bad-triple", []string{"-maxprocs", "64", "-triple", "eazy"}, "unknown triple"},
		{"trace-to-stdout", []string{"-maxprocs", "64", "-trace", "-"}, "cannot write to stdout"},
		{"trace-to-dev-stdout", []string{"-maxprocs", "64", "-trace", "/dev/stdout"}, "cannot write to stdout"},
		{"spec+maxprocs", []string{"-spec", "x.yaml", "-maxprocs", "64"}, "drop -maxprocs"},
		{"spec+triple", []string{"-spec", "x.yaml", "-triple", "easy"}, "drop -triple"},
		{"unknown-flag", []string{"-flood", "everything"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(context.Background(), tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.want)
			}
		})
	}
}

// syncBuffer is a goroutine-safe writer: the server goroutine writes
// while the test polls for the listening line.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`listening on (http://[^\s]+)`)

// startServer launches run() in server mode on an ephemeral port and
// returns the base URL plus the exit channel and output buffers.
func startServer(t *testing.T, args []string) (string, chan int, *syncBuffer, *syncBuffer) {
	t.Helper()
	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	exit := make(chan int, 1)
	go func() { exit <- run(context.Background(), args, stdout, stderr) }()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(stderr.String()); m != nil {
			return m[1], exit, stdout, stderr
		}
		select {
		case code := <-exit:
			t.Fatalf("server exited %d before listening (stderr: %s)", code, stderr.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never printed the listening line (stderr: %s)", stderr.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// writeTrace generates a workload and writes it as an SWF file,
// returning the path and the number of jobs the cleaning rules keep.
func writeTrace(t *testing.T, preset string, jobs int) (string, int64, int) {
	t.Helper()
	cfg, err := workload.Scaled(preset, jobs)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.swf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := swf.Write(f, &swf.Trace{Header: swf.Header{MaxProcs: w.MaxProcs}, Jobs: w.Jobs}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	src := workload.NewCleanSource(workload.NewScanSource(swf.NewScanner(g)), w.MaxProcs)
	kept := 0
	for {
		if _, err := src.NextJob(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		kept++
	}
	return path, w.MaxProcs, kept
}

// TestServeReplayShutdown is the CLI end to end: a server on an
// ephemeral port, a replay client submitting a generated SWF trace,
// a wire-side shutdown — and the server's final summary must be
// byte-identical to the block the client printed from the shutdown
// response (same StreamSummary either side of the wire).
func TestServeReplayShutdown(t *testing.T) {
	path, maxProcs, kept := writeTrace(t, "KTH-SP2", 150)
	base, exit, stdout, stderr := startServer(t, []string{
		"-addr", "127.0.0.1:0", "-maxprocs", fmt.Sprint(maxProcs), "-triple", "easy++",
	})

	var cliOut, cliErr bytes.Buffer
	if code := run(context.Background(), []string{
		"-connect", base, "-replay", path, "-shutdown",
	}, &cliOut, &cliErr); code != 0 {
		t.Fatalf("client exit %d, stderr: %s", code, cliErr.String())
	}
	if code := <-exit; code != 0 {
		t.Fatalf("server exit %d, stderr: %s", code, stderr.String())
	}

	want := fmt.Sprintf("workload      live (streamed, %d jobs finished, %d procs)", kept, maxProcs)
	if !strings.Contains(cliOut.String(), want) {
		t.Fatalf("client summary missing %q:\n%s", want, cliOut.String())
	}
	if cliOut.String() != stdout.String() {
		t.Fatalf("server and client summaries differ:\nserver:\n%s\nclient:\n%s", stdout.String(), cliOut.String())
	}
	for _, line := range []string{"triple        EASY-SJBF/AVE2/Incremental", "AVEbsld", "utilization", "prediction MAE"} {
		if !strings.Contains(cliOut.String(), line) {
			t.Errorf("summary missing %q:\n%s", line, cliOut.String())
		}
	}
}

// TestServeSpecAndSignal starts the server from a serve: spec block and
// drains it through context cancellation — the SIGTERM path.
func TestServeSpecAndSignal(t *testing.T) {
	specPath := filepath.Join(t.TempDir(), "serve.yaml")
	if err := os.WriteFile(specPath, []byte(
		"serve:\n  addr: 127.0.0.1:0\n  max_procs: 64\n  triple: easy\n  clients: [a, b]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	ctx, cancel := context.WithCancel(context.Background())
	exit := make(chan int, 1)
	go func() { exit <- run(ctx, []string{"-spec", specPath}, stdout, stderr) }()
	deadline := time.Now().Add(30 * time.Second)
	for listenRE.FindStringSubmatch(stderr.String()) == nil {
		if time.Now().After(deadline) {
			t.Fatalf("server never printed the listening line (stderr: %s)", stderr.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	if code := <-exit; code != 0 {
		t.Fatalf("server exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "draining") {
		t.Errorf("stderr missing the drain notice: %s", stderr.String())
	}
	out := stdout.String()
	for _, line := range []string{"workload      live (streamed, 0 jobs finished, 64 procs)", "triple        EASY/RequestedTime/RequestedTime", "client a", "client b"} {
		if !strings.Contains(out, line) {
			t.Errorf("summary missing %q:\n%s", line, out)
		}
	}
}
