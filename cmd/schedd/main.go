// Command schedd runs the live scheduling daemon, or a replay client
// against one.
//
// Server mode listens for HTTP+JSON traffic (submissions,
// cancellations, drain/restore announcements, what-if queries — see
// internal/schedd) and schedules it on the shared event core:
//
//	schedd -maxprocs 128 -triple easy++                  # virtual time
//	schedd -maxprocs 128 -scale 100 -clients a,b         # 100 virtual s per wall s
//	schedd -spec specs/serve.yaml                        # config from a serve: block
//	schedd -maxprocs 128 -trace decisions.jsonl          # flight recorder to disk
//
// The daemon prints "listening on" to stderr once the socket is open,
// drains gracefully on SIGINT/SIGTERM or POST /v1/shutdown (queued
// commands still run; new intake gets 409), and prints the same final
// metric block simsched -stream prints — so an offline replay of the
// same trace can be diffed against the served run.
//
// Client mode replays an SWF trace into a running daemon, one
// submission per job through the same cleaning rules simsched -stream
// applies, and optionally drains the daemon and prints its summary:
//
//	schedd -connect http://localhost:8080 -replay trace.swf -shutdown
//
// Contradictory flag combinations exit 2 with a message naming the
// conflict: server flags conflict with -connect, client flags need it,
// -spec supplies the server configuration so it excludes
// -maxprocs/-triple/-scale/-clients, and -trace cannot write to stdout
// (the final summary owns it).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/schedd"
	"repro/internal/spec"
	"repro/internal/swf"
	"repro/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parse, validate the flag surface,
// dispatch. Exit status 2 is a usage error, 1 a runtime failure.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("schedd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8080", "HTTP listen address (server mode)")
	specPath := fs.String("spec", "", "read the server configuration from this spec file's serve: block")
	maxProcs := fs.Int64("maxprocs", 0, "machine size (server mode; required unless -spec)")
	tripleName := fs.String("triple", "easy++", "named triple: easy | easy++ | best | clairvoyant | clairvoyant-sjbf | conservative")
	scale := fs.Float64("scale", 0, "time mode: 0 = virtual time (clients state instants), >0 = scaled wall time (virtual seconds per wall second)")
	clientsFlag := fs.String("clients", "", "comma-separated client names for the per-client metric split")
	workloadName := fs.String("workload", "live", "run name tagging metrics and trace events")
	traceFile := fs.String("trace", "", "append the structured decision trace (JSONL; summarize with tracestat) to this file")
	connect := fs.String("connect", "", "client mode: base URL of a running daemon (e.g. http://localhost:8080)")
	replayFile := fs.String("replay", "", "client mode: SWF trace to submit job by job")
	session := fs.String("session", "replay", "client mode: session name for the replayed submissions")
	clientName := fs.String("client", "", "client mode: client name the session reports as (selects the metric split)")
	doShutdown := fs.Bool("shutdown", false, "client mode: drain the daemon after the replay and print its final summary")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	usage := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "schedd: "+format+"\n", a...)
		fs.Usage()
		return 2
	}

	if *connect != "" {
		if *replayFile == "" {
			return usage("-connect needs -replay (the trace to submit)")
		}
		for _, f := range []string{"addr", "spec", "maxprocs", "triple", "scale", "clients", "workload", "trace"} {
			if set[f] {
				return usage("-%s configures the server; it conflicts with -connect", f)
			}
		}
		if err := runClient(*connect, *replayFile, *session, *clientName, *doShutdown, stdout); err != nil {
			fmt.Fprintln(stderr, "schedd:", err)
			return 1
		}
		return 0
	}
	for _, f := range []string{"replay", "session", "client", "shutdown"} {
		if set[f] {
			return usage("-%s drives a replay client; it needs -connect", f)
		}
	}
	if *traceFile == "-" || *traceFile == "/dev/stdout" {
		return usage("-trace cannot write to stdout (the final summary owns it); give it a file path")
	}

	opts := schedd.Options{Workload: *workloadName, MaxProcs: *maxProcs, Scale: *scale}
	if *clientsFlag != "" {
		opts.Clients = strings.Split(*clientsFlag, ",")
	}
	if *specPath != "" {
		for _, f := range []string{"maxprocs", "triple", "scale", "clients"} {
			if set[f] {
				return usage("-spec supplies the server configuration; drop -%s", f)
			}
		}
		s, err := spec.Load(*specPath)
		if err != nil {
			fmt.Fprintln(stderr, "schedd:", err)
			return 1
		}
		if s.Serve == nil {
			return usage("%s has no serve: block", *specPath)
		}
		opts.MaxProcs, opts.Scale, opts.Triple, opts.Clients = s.Serve.MaxProcs, s.Serve.Scale, s.Serve.Triple, s.Serve.Clients
		if !set["addr"] {
			*addr = s.Serve.Addr
		}
	} else {
		if opts.MaxProcs <= 0 {
			return usage("-maxprocs must be positive (or pass -spec with a serve: block)")
		}
		tr, err := parseTriple(*tripleName)
		if err != nil {
			return usage("%v", err)
		}
		opts.Triple = tr
	}
	return runServer(ctx, *addr, opts, *traceFile, stdout, stderr)
}

func parseTriple(name string) (core.Triple, error) {
	switch strings.ToLower(name) {
	case "easy":
		return core.EASY(), nil
	case "easy++":
		return core.EASYPlusPlus(), nil
	case "best":
		return core.PaperBest(), nil
	case "clairvoyant":
		return core.ClairvoyantEASY(), nil
	case "clairvoyant-sjbf":
		return core.ClairvoyantSJBF(), nil
	case "conservative":
		return core.ConservativeBF(), nil
	}
	return core.Triple{}, fmt.Errorf("unknown triple %q (have easy, easy++, best, clairvoyant, clairvoyant-sjbf, conservative)", name)
}

// runServer opens the socket, serves until a signal, a server error or
// a wire-side /v1/shutdown, then drains the daemon and prints the final
// streaming summary.
func runServer(ctx context.Context, addr string, opts schedd.Options, traceFile string, stdout, stderr io.Writer) int {
	var trace *obs.JSONL
	if traceFile != "" {
		t, err := obs.OpenJSONL(traceFile)
		if err != nil {
			fmt.Fprintln(stderr, "schedd:", err)
			return 1
		}
		trace = t
		opts.Tracer = t
		fmt.Fprintf(stderr, "schedd: tracing decisions to %s\n", traceFile)
	}
	d, err := schedd.New(opts)
	if err != nil {
		fmt.Fprintln(stderr, "schedd:", err)
		return 1
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		d.Shutdown()
		fmt.Fprintln(stderr, "schedd:", err)
		return 1
	}
	fmt.Fprintf(stderr, "schedd: listening on http://%s\n", ln.Addr())
	srv := &http.Server{Handler: d.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	code := 0
	select {
	case <-ctx.Done():
		fmt.Fprintln(stderr, "schedd: signal received, draining")
	case <-d.Done():
		// A client drained the daemon over the wire.
	case err := <-serveErr:
		fmt.Fprintln(stderr, "schedd:", err)
		code = 1
	}
	res, runErr := d.Shutdown()
	srv.Close()
	if runErr != nil {
		fmt.Fprintln(stderr, "schedd:", runErr)
		return 1
	}
	report.StreamSummary(stdout, report.CollectStreamRun(opts.Workload, opts.MaxProcs, opts.Triple.Name(), res.Makespan, res.Corrections, d.Overall()))
	if len(opts.Clients) > 0 {
		report.ClientSplit(stdout, d.PerClient())
	}
	if trace != nil {
		if err := trace.Close(); err != nil {
			fmt.Fprintln(stderr, "schedd: trace:", err)
			return 1
		}
	}
	return code
}

// shutdownReport is the POST /v1/shutdown response body.
type shutdownReport struct {
	Finished    int                    `json:"finished"`
	Canceled    int                    `json:"canceled"`
	Makespan    int64                  `json:"makespan"`
	Corrections int                    `json:"corrections"`
	Metrics     schedd.MetricsSnapshot `json:"metrics"`
}

// runClient replays an SWF trace into a running daemon: open a
// session, submit each cleaned job at its logged instant, close the
// session, and (with -shutdown) drain the daemon and print its final
// summary — the block simsched -stream prints for the same trace.
func runClient(base, path, session, client string, shutdown bool, stdout io.Writer) error {
	base = strings.TrimSuffix(base, "/")
	hc := http.DefaultClient

	// The daemon's machine size drives the same per-job cleaning rules
	// simsched -stream applies, so both paths schedule identical jobs.
	var status struct {
		MaxProcs int64 `json:"max_procs"`
	}
	if err := getJSON(hc, base+"/v1/status", &status); err != nil {
		return err
	}

	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	src := workload.NewCleanSource(workload.NewScanSource(swf.NewScanner(f)), status.MaxProcs)

	if err := postJSON(hc, base+"/v1/sessions", map[string]string{"session": session, "client": client}, nil); err != nil {
		return err
	}
	submitted := 0
	for {
		j, err := src.NextJob()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		req := schedd.SubmitRequest{Session: session, Job: schedd.JobSpec{
			Number: j.JobNumber, Submit: j.SubmitTime, Procs: j.Procs(),
			Request: j.Request(), Runtime: j.RunTime, User: j.UserID, Partition: j.Partition,
		}}
		if err := postJSON(hc, base+"/v1/jobs", req, nil); err != nil {
			return fmt.Errorf("job %d: %w", j.JobNumber, err)
		}
		submitted++
	}
	if err := postJSON(hc, base+"/v1/sessions/close", map[string]string{"session": session}, nil); err != nil {
		return err
	}
	if !shutdown {
		fmt.Fprintf(stdout, "submitted %d jobs from %s\n", submitted, path)
		return nil
	}
	var rep shutdownReport
	if err := postJSON(hc, base+"/v1/shutdown", nil, &rep); err != nil {
		return err
	}
	m := rep.Metrics
	report.StreamSummary(stdout, report.StreamRun{
		Workload: m.Workload, Finished: rep.Finished, MaxProcs: m.MaxProcs, Triple: m.Triple,
		AVEbsld: m.AVEbsld, MaxBsld: m.MaxBsld,
		MeanWait: m.MeanWait, WaitP50: m.WaitP50, WaitP95: m.WaitP95, WaitP99: m.WaitP99,
		Utilization: m.Utilization, Corrections: rep.Corrections, MAE: m.MAE, MeanELoss: m.MeanELoss,
	})
	return nil
}

// getJSON decodes a GET response, surfacing the daemon's error body.
func getJSON(hc *http.Client, url string, out any) error {
	resp, err := hc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

// postJSON posts a JSON body and decodes the response into out (out
// nil drains and discards it), surfacing the daemon's error body.
func postJSON(hc *http.Client, url string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	resp, err := hc.Post(url, "application/json", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

func decodeResponse(resp *http.Response, out any) error {
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error != "" {
			return errors.New(e.Error)
		}
		return fmt.Errorf("%s: HTTP %d", resp.Request.URL, resp.StatusCode)
	}
	if out == nil {
		_, err := io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
