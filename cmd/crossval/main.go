// Command crossval reproduces Table 7: it runs the full campaign on the
// six preset workloads, performs the leave-one-out cross-validation
// triple selection of Section 6.3.3, and prints the selected triple's
// AVEbsld against the EASY and EASY++ baselines per held-out log.
//
// Usage:
//
//	crossval -jobs 3000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/campaign"
	"repro/internal/report"
)

func main() {
	jobs := flag.Int("jobs", 3000, "jobs per preset workload (0 = full Table-4 sizes; slow)")
	par := flag.Int("p", 0, "parallel simulations (0 = GOMAXPROCS)")
	flag.Parse()

	if err := validateFlags(*jobs, *par); err != nil {
		fmt.Fprintln(os.Stderr, "crossval:", err)
		flag.Usage()
		os.Exit(2)
	}

	ws, err := campaign.DefaultWorkloads(*jobs)
	if err != nil {
		fatal(err)
	}
	c := &campaign.Campaign{Workloads: ws, Parallelism: *par}
	fmt.Fprintf(os.Stderr, "crossval: running %d simulations...\n", len(ws)*130)
	results, err := c.Run(context.Background())
	if err != nil {
		fatal(err)
	}
	cv, err := campaign.LeaveOneOut(results)
	if err != nil {
		fatal(err)
	}
	fmt.Println(report.Table7(cv, results))

	// Summary line matching the paper's headline claim.
	var sumEasyRed, sumPPRed float64
	var n int
	for _, c := range cv {
		easy, ok1 := campaignScore(results, c.HeldOut, true)
		pp, ok2 := campaignScore(results, c.HeldOut, false)
		if !ok1 || !ok2 || easy == 0 || pp == 0 {
			continue
		}
		sumEasyRed += 100 * (easy - c.Score) / easy
		sumPPRed += 100 * (pp - c.Score) / pp
		n++
	}
	if n > 0 {
		fmt.Printf("Average AVEbsld reduction of the C-V triple: %.0f%% vs EASY, %.0f%% vs EASY++ (paper: 28%% and 11%%)\n",
			sumEasyRed/float64(n), sumPPRed/float64(n))
	}
}

// validateFlags rejects the silent-typo values (mirroring cmd/campaign's
// negative-flag rejection: negative values used to fall back to defaults
// silently).
func validateFlags(jobs, par int) error {
	if jobs < 0 {
		return fmt.Errorf("-jobs must be >= 0 (0 = full Table-4 sizes), got %d", jobs)
	}
	if par < 0 {
		return fmt.Errorf("-p must be >= 0 (0 = GOMAXPROCS), got %d", par)
	}
	return nil
}

func campaignScore(results []campaign.RunResult, workload string, easy bool) (float64, bool) {
	name := "EASY/RequestedTime/RequestedTime"
	if !easy {
		name = "EASY-SJBF/AVE2/Incremental"
	}
	return campaign.Score(results, workload, name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crossval:", err)
	os.Exit(1)
}
