package main

import "testing"

func TestValidateFlags(t *testing.T) {
	for _, c := range []struct {
		jobs, par int
		ok        bool
	}{
		{3000, 0, true},
		{0, 0, true}, // 0 means full size / GOMAXPROCS
		{100, 4, true},
		{-1, 0, false},
		{3000, -2, false},
	} {
		err := validateFlags(c.jobs, c.par)
		if (err == nil) != c.ok {
			t.Errorf("validateFlags(%d, %d) = %v, want ok=%v", c.jobs, c.par, err, c.ok)
		}
	}
}
