package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// writeTrace runs a small federated simulation with the flight
// recorder on and returns the trace path — tracestat's input is
// whatever the engine actually emits, not hand-built lines.
func writeTrace(t *testing.T) string {
	t.Helper()
	cfg, err := workload.Scaled("KTH-SP2", 200)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr, err := obs.OpenJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := core.EASYPlusPlus().Config()
	cfg2.Tracer = tr
	res, err := sim.Run(w, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if res.Finished == 0 {
		t.Fatal("nothing finished")
	}
	return path
}

func TestSummary(t *testing.T) {
	path := writeTrace(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"events over", "submit", "pick", "finish",
		"Pick decisions (per policy)", "EASY-SJBF", "declined",
		"Prediction error at finish", "Prediction-error drift (8 windows",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// Single-machine run: no routing table.
	if strings.Contains(out, "Routing (per cluster)") {
		t.Errorf("single-machine summary grew a routing table:\n%s", out)
	}
}

func TestSummaryWindows(t *testing.T) {
	path := writeTrace(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-windows", "3", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "drift (3 windows") {
		t.Errorf("-windows ignored:\n%s", stdout.String())
	}
}

func TestCheckOK(t *testing.T) {
	path := writeTrace(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-check", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "events OK") {
		t.Errorf("check output: %s", stdout.String())
	}
}

// TestCheckRejects pins the failure mode CI relies on: a corrupt line
// fails with its line number and a nonzero exit.
func TestCheckRejects(t *testing.T) {
	cases := []struct {
		name, line, want string
	}{
		{"unknown-kind", `{"t":1,"kind":"teleport"}`, "unknown event kind"},
		{"unknown-field", `{"t":1,"kind":"submit","job":1,"procs":2,"banana":true}`, "banana"},
		{"missing-job", `{"t":1,"kind":"start"}`, "without a job id"},
		{"negative-instant", `{"t":-5,"kind":"pick","policy":"EASY"}`, "negative instant"},
		{"not-json", `this is not json`, "invalid"},
	}
	valid := `{"t":1,"kind":"submit","job":1,"procs":2}`
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "bad.jsonl")
			if err := os.WriteFile(path, []byte(valid+"\n"+tc.line+"\n"+valid+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			var stdout, stderr bytes.Buffer
			if code := run([]string{"-check", path}, &stdout, &stderr); code != 1 {
				t.Fatalf("exit %d, want 1 (stdout: %s)", code, stdout.String())
			}
			if !strings.Contains(stderr.String(), "2") {
				t.Errorf("stderr %q does not name line 2", stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.want)
			}
		})
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                     // no file
		{"a.jsonl", "b.jsonl"}, // two files
		{"-windows", "0", "x"}, // bad windows
		{"-frobnicate", "x"},   // unknown flag
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestMissingAndEmptyFiles(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{filepath.Join(t.TempDir(), "absent.jsonl")}, &stdout, &stderr); code != 1 {
		t.Fatalf("missing file: exit %d, want 1", code)
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{empty}, &stdout, &stderr); code != 1 {
		t.Fatalf("empty file: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "empty trace") {
		t.Errorf("stderr %q does not mention the empty trace", stderr.String())
	}
}
