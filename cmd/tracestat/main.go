// Command tracestat summarizes a flight-recorder trace — the
// structured decision JSONL that campaign/simsched -trace append (see
// the README's Observability section). One pass over the file yields:
//
//   - the event census (lines per kind),
//   - per-policy Pick behavior: call counts, decline rate (passes that
//     started nothing) and decision-latency quantiles from the traced
//     nanosecond timings,
//   - prediction quality: per-job error quantiles at finish, and the
//     mean absolute error's drift across -windows equal slices of the
//     simulated timeline (is the predictor converging?),
//   - the per-cluster routing breakdown of federated runs.
//
// With -check it instead validates every line against the trace schema
// (strict field set, kind vocabulary, per-kind required fields) and
// exits nonzero on the first bad line — the mode CI runs on its smoke
// trace.
//
// Usage:
//
//	campaign -jobs 200 -table 1 -trace run.jsonl
//	tracestat run.jsonl
//	tracestat -windows 12 run.jsonl
//	tracestat -check run.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"

	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracestat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	check := fs.Bool("check", false, "validate every line against the trace schema and exit (nonzero on the first bad line)")
	windows := fs.Int("windows", 8, "time windows for the prediction-error drift table")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: tracestat [-check] [-windows N] TRACE.jsonl")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	if *windows < 1 {
		fmt.Fprintln(stderr, "tracestat: -windows must be >= 1")
		return 2
	}
	path := fs.Arg(0)

	if *check {
		n, err := checkTrace(path)
		if err != nil {
			fmt.Fprintln(stderr, "tracestat:", err)
			return 1
		}
		fmt.Fprintf(stdout, "%s: %d events OK\n", path, n)
		return 0
	}

	sum, err := summarize(path, *windows)
	if err != nil {
		fmt.Fprintln(stderr, "tracestat:", err)
		return 1
	}
	sum.render(stdout)
	return 0
}

// checkTrace is the -check mode: every line must decode strictly and
// satisfy the schema validator. The first offense is reported with its
// line number.
func checkTrace(path string) (int, error) {
	n := 0
	err := obs.ReadFile(path, func(line int, ev obs.Event) error {
		if err := obs.ValidateEvent(&ev); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		n++
		return nil
	})
	return n, err
}

// policyStats accumulates the Pick telemetry of one scheduling policy.
type policyStats struct {
	calls    int64
	declined int64
	latency  *stats.Sketch
}

// clusterStats accumulates the routing telemetry of one cluster.
type clusterStats struct {
	routed int64
	procs  int64
}

// finishSample is one job's prediction outcome, buffered for the drift
// table (windowing needs the timeline bounds, so it is a second pass
// over this in-memory slice — not over the file).
type finishSample struct {
	t       int64
	predErr float64
}

// summary is everything one pass over the trace accumulates.
type summary struct {
	path     string
	windows  int
	total    int
	kinds    map[string]int
	policies map[string]*policyStats
	clusters map[string]*clusterStats
	predErr  *stats.Sketch
	bsld     *stats.Sketch
	finishes []finishSample
	minT     int64
	maxT     int64
}

func summarize(path string, windows int) (*summary, error) {
	s := &summary{
		path: path, windows: windows,
		kinds:    map[string]int{},
		policies: map[string]*policyStats{},
		clusters: map[string]*clusterStats{},
		predErr:  stats.NewSketch(),
		bsld:     stats.NewSketch(),
		minT:     1<<63 - 1, maxT: -(1 << 62),
	}
	err := obs.ReadFile(path, func(line int, ev obs.Event) error {
		if err := obs.ValidateEvent(&ev); err != nil {
			return fmt.Errorf("line %d: %w (rerun with -check)", line, err)
		}
		s.total++
		s.kinds[ev.Kind]++
		if ev.T < s.minT {
			s.minT = ev.T
		}
		if ev.T > s.maxT {
			s.maxT = ev.T
		}
		switch ev.Kind {
		case obs.KindPick:
			p := s.policies[ev.Policy]
			if p == nil {
				p = &policyStats{latency: stats.NewSketch()}
				s.policies[ev.Policy] = p
			}
			p.calls++
			if ev.Picked == 0 {
				p.declined++
			}
			if ev.Nanos > 0 {
				p.latency.Add(float64(ev.Nanos))
			}
		case obs.KindRoute:
			c := s.clusters[ev.Cluster]
			if c == nil {
				c = &clusterStats{}
				s.clusters[ev.Cluster] = c
			}
			c.routed++
			c.procs += ev.Procs
		case obs.KindFinish:
			s.predErr.Add(float64(ev.PredErr))
			s.bsld.Add(ev.Bsld)
			s.finishes = append(s.finishes, finishSample{t: ev.T, predErr: float64(ev.PredErr)})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if s.total == 0 {
		return nil, fmt.Errorf("%s: empty trace", path)
	}
	return s, nil
}

func (s *summary) render(w io.Writer) {
	fmt.Fprintf(w, "%s: %d events over [%d, %d]\n\n", s.path, s.total, s.minT, s.maxT)

	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Kind\tevents\t")
	for _, k := range []string{obs.KindSubmit, obs.KindRoute, obs.KindPick, obs.KindStart,
		obs.KindFinish, obs.KindCancel, obs.KindCapacity, obs.KindCorrect} {
		if n := s.kinds[k]; n > 0 {
			fmt.Fprintf(tw, "%s\t%d\t\n", k, n)
		}
	}
	tw.Flush()

	if len(s.policies) > 0 {
		fmt.Fprintln(w, "\nPick decisions (per policy):")
		tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "Policy\tcalls\tdeclined\tp50 ns\tp90 ns\tp99 ns\tmax ns\t")
		for _, name := range sortedKeys(s.policies) {
			p := s.policies[name]
			fmt.Fprintf(tw, "%s\t%d\t%.1f%%\t%.0f\t%.0f\t%.0f\t%.0f\t\n",
				name, p.calls, 100*float64(p.declined)/float64(p.calls),
				p.latency.Quantile(0.50), p.latency.Quantile(0.90),
				p.latency.Quantile(0.99), p.latency.Max())
		}
		tw.Flush()
	}

	if s.predErr.Count() > 0 {
		fmt.Fprintln(w, "\nPrediction error at finish (predicted - actual, seconds):")
		tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "jobs\tp10\tp50\tp90\tmean bsld\t")
		fmt.Fprintf(tw, "%d\t%.0f\t%.0f\t%.0f\t%.2f\t\n",
			s.predErr.Count(), s.predErr.Quantile(0.10), s.predErr.Quantile(0.50),
			s.predErr.Quantile(0.90), s.bsld.Quantile(0.50))
		tw.Flush()
		s.renderDrift(w)
	}

	if len(s.clusters) > 0 {
		fmt.Fprintln(w, "\nRouting (per cluster):")
		tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "Cluster\trouted\tshare\tprocs requested\t")
		routes := int64(0)
		for _, c := range s.clusters {
			routes += c.routed
		}
		for _, name := range sortedKeys(s.clusters) {
			c := s.clusters[name]
			fmt.Fprintf(tw, "%s\t%d\t%.1f%%\t%d\t\n",
				name, c.routed, 100*float64(c.routed)/float64(routes), c.procs)
		}
		tw.Flush()
	}
}

// renderDrift splits the simulated timeline into equal windows and
// reports the mean absolute prediction error per window — a drifting
// column means the predictor is still learning (or being disrupted).
func (s *summary) renderDrift(w io.Writer) {
	if len(s.finishes) == 0 {
		return
	}
	lo, hi := s.finishes[0].t, s.finishes[0].t
	for _, f := range s.finishes {
		if f.t < lo {
			lo = f.t
		}
		if f.t > hi {
			hi = f.t
		}
	}
	span := hi - lo + 1
	counts := make([]int64, s.windows)
	sums := make([]float64, s.windows)
	for _, f := range s.finishes {
		i := int(int64(s.windows) * (f.t - lo) / span)
		counts[i]++
		if f.predErr < 0 {
			sums[i] -= f.predErr
		} else {
			sums[i] += f.predErr
		}
	}
	fmt.Fprintf(w, "\nPrediction-error drift (%d windows over [%d, %d], mean |err| s):\n", s.windows, lo, hi)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "window\tfinishes\tmean |err|\t")
	for i := 0; i < s.windows; i++ {
		if counts[i] == 0 {
			fmt.Fprintf(tw, "%d\t0\t-\t\n", i+1)
			continue
		}
		fmt.Fprintf(tw, "%d\t%d\t%.0f\t\n", i+1, counts[i], sums[i]/float64(counts[i]))
	}
	tw.Flush()
}

// sortedKeys returns the map's keys in lexical order so the tables are
// deterministic.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
