// Command gentrace generates a synthetic SWF workload from one of the
// Table-4 presets (or a custom size) and writes it to stdout or a file.
// With -spec it instead materializes every workload of an experiment
// spec file (see specs/ and the README schema) — including inline
// custom generator configs no preset flag can express.
//
// Usage:
//
//	gentrace -preset Curie -jobs 5000 -o curie.swf
//	gentrace -preset KTH-SP2 -stats
//	gentrace -spec specs/ci-smoke.yaml -o traces/           # one .swf per workload
//	gentrace -spec specs/nightly.yaml -stats
//	gentrace -preset huge-synthetic -stream -o huge.swf     # 1M jobs, bounded memory
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/spec"
	"repro/internal/swf"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	preset := flag.String("preset", "KTH-SP2", "workload preset (one of "+fmt.Sprint(workload.PresetNames())+")")
	jobs := flag.Int("jobs", 0, "scale the preset down to this many jobs (0 = full Table-4 size)")
	seed := flag.Uint64("seed", 0, "override the preset's deterministic seed (0 = keep)")
	out := flag.String("o", "", "output SWF path (default stdout); with a multi-workload -spec, a directory")
	stats := flag.Bool("stats", false, "print workload statistics instead of the trace")
	specPath := flag.String("spec", "", "generate the workloads of this experiment spec instead of -preset")
	stream := flag.Bool("stream", false, "generate straight to disk in bounded memory (streaming generator; arrival draws differ from the in-memory generator, determinism per seed is identical)")
	flag.Parse()

	cfgs := resolveConfigs(*specPath, *preset, *jobs, *seed)

	if *stream {
		if *stats {
			fatal(fmt.Errorf("-stream cannot compute whole-trace statistics; drop -stats"))
		}
		streamConfigs(cfgs, *specPath, *out)
		return
	}

	if *stats {
		for i, cfg := range cfgs {
			if i > 0 {
				fmt.Println()
			}
			printStats(generate(cfg))
		}
		return
	}

	// With -spec, -o is always a directory (one .swf per workload), no
	// matter how many workloads the spec resolves to — so a script does
	// not break when the spec's workload list shrinks to one. Without
	// -spec, -o stays a single file path as before.
	if *specPath == "" {
		writeTrace(generate(cfgs[0]), *out)
		return
	}
	if *out == "" {
		if len(cfgs) == 1 {
			writeTrace(generate(cfgs[0]), "")
			return
		}
		fatal(fmt.Errorf("the spec has %d workloads; pass -o DIR to write one .swf per workload", len(cfgs)))
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, cfg := range cfgs {
		path := filepath.Join(*out, cfg.Name+".swf")
		writeTrace(generate(cfg), path)
		fmt.Fprintf(os.Stderr, "gentrace: wrote %s (%d jobs)\n", path, cfg.Jobs)
	}
}

// resolveConfigs turns the flags — or the spec, with flags as overrides
// — into the list of generator configurations to materialize.
func resolveConfigs(specPath, preset string, jobs int, seed uint64) []workload.Config {
	if specPath == "" {
		cfg, err := workload.Scaled(preset, jobs)
		if err != nil {
			fatal(err)
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		return []workload.Config{cfg}
	}
	s, err := spec.Load(specPath)
	if err != nil {
		fatal(err)
	}
	var ov spec.Overrides
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "jobs":
			ov.Jobs = &jobs
		case "preset":
			fatal(fmt.Errorf("-preset conflicts with -spec (the spec lists its workloads)"))
		}
	})
	s.Apply(ov)
	cfgs, err := s.WorkloadConfigs()
	if err != nil {
		fatal(err)
	}
	if seed != 0 {
		for i := range cfgs {
			cfgs[i].Seed = seed
		}
	}
	return cfgs
}

// streamConfigs writes each workload with the bounded-memory generator:
// jobs go from the arrival sampler straight into the SWF writer, so a
// million-job trace costs megabytes, not gigabytes. The -o handling
// mirrors the preloading path (single file without -spec, directory
// with one).
func streamConfigs(cfgs []workload.Config, specPath, out string) {
	if specPath == "" || (out == "" && len(cfgs) == 1) {
		streamTrace(cfgs[0], out)
		return
	}
	if out == "" {
		fatal(fmt.Errorf("the spec has %d workloads; pass -o DIR to write one .swf per workload", len(cfgs)))
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		fatal(err)
	}
	for _, cfg := range cfgs {
		path := filepath.Join(out, cfg.Name+".swf")
		streamTrace(cfg, path)
		fmt.Fprintf(os.Stderr, "gentrace: wrote %s (%d jobs, streamed)\n", path, cfg.Jobs)
	}
}

// streamTrace pipes one streaming generator into one SWF file.
func streamTrace(cfg workload.Config, out string) {
	g, err := workload.NewGenSource(cfg)
	if err != nil {
		fatal(err)
	}
	dst := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dst = f
	}
	w := swf.NewWriter(dst)
	h := g.Header()
	if err := w.WriteHeader(&h); err != nil {
		fatal(err)
	}
	for {
		j, err := g.NextJob()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		if err := w.WriteJob(&j); err != nil {
			fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
}

func generate(cfg workload.Config) *trace.Workload {
	w, err := workload.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	return w
}

func printStats(w *trace.Workload) {
	s := trace.ComputeStats(w)
	fmt.Printf("workload      %s\n", s.Name)
	fmt.Printf("machine       %d processors\n", s.MaxProcs)
	fmt.Printf("jobs          %d\n", s.Jobs)
	fmt.Printf("users         %d\n", s.Users)
	fmt.Printf("duration      %d s (%.1f days)\n", s.DurationSec, float64(s.DurationSec)/86400)
	fmt.Printf("offered load  %.2f\n", s.OfferedLoad)
	fmt.Printf("mean runtime  %.0f s (median %d s)\n", s.MeanRunTime, s.MedianRunTime)
	fmt.Printf("mean request  %.0f s (mean over-estimation %.1fx)\n", s.MeanRequested, s.MeanOverestim)
	fmt.Printf("mean width    %.1f procs (max %d)\n", s.MeanProcsPerJob, s.MaxProcsPerJob)
}

func writeTrace(w *trace.Workload, out string) {
	dst := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dst = f
	}
	tr := &swf.Trace{
		Header: swf.Header{MaxProcs: w.MaxProcs, MaxJobs: int64(len(w.Jobs))},
		Jobs:   w.Jobs,
	}
	if err := swf.Write(dst, tr); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gentrace:", err)
	os.Exit(1)
}
