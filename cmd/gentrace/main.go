// Command gentrace generates a synthetic SWF workload from one of the
// Table-4 presets (or a custom size) and writes it to stdout or a file.
// With -spec it instead materializes every workload of an experiment
// spec file (see specs/ and docs/WORKLOADS.md) — including inline
// custom generator configs and multi-client clients blocks no preset
// flag can express. Multi-client workloads are written with one
// Partition comment header per client (name, job count, realized rate
// share, arrival process), so generated traces are self-describing.
//
// Usage:
//
//	gentrace -preset Curie -jobs 5000 -o curie.swf
//	gentrace -preset KTH-SP2 -stats
//	gentrace -spec specs/ci-smoke.yaml -o traces/           # one .swf per workload
//	gentrace -spec specs/clients.yaml -o traces/            # multi-client, per-client headers
//	gentrace -spec specs/nightly.yaml -stats
//	gentrace -preset huge-synthetic -stream -o huge.swf     # 1M jobs, bounded memory
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/spec"
	"repro/internal/swf"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	preset := flag.String("preset", "KTH-SP2", "workload preset (one of "+fmt.Sprint(workload.PresetNames())+")")
	jobs := flag.Int("jobs", 0, "scale the preset down to this many jobs (0 = full Table-4 size)")
	seed := flag.Uint64("seed", 0, "override the preset's deterministic seed (0 = keep)")
	out := flag.String("o", "", "output SWF path (default stdout); with a multi-workload -spec, a directory")
	stats := flag.Bool("stats", false, "print workload statistics instead of the trace")
	specPath := flag.String("spec", "", "generate the workloads of this experiment spec instead of -preset")
	stream := flag.Bool("stream", false, "generate straight to disk in bounded memory (streaming generator; arrival draws differ from the in-memory generator, determinism per seed is identical)")
	flag.Parse()

	entries := resolveEntries(*specPath, *preset, *jobs, *seed)

	if *stream {
		if *stats {
			fatal(fmt.Errorf("-stream cannot compute whole-trace statistics; drop -stats"))
		}
		streamEntries(entries, *specPath, *out)
		return
	}

	if *stats {
		for i, e := range entries {
			if i > 0 {
				fmt.Println()
			}
			printStats(generate(e))
		}
		return
	}

	// With -spec, -o is always a directory (one .swf per workload), no
	// matter how many workloads the spec resolves to — so a script does
	// not break when the spec's workload list shrinks to one. Without
	// -spec, -o stays a single file path as before.
	if *specPath == "" {
		writeEntry(entries[0], *out)
		return
	}
	if *out == "" {
		if len(entries) == 1 {
			writeEntry(entries[0], "")
			return
		}
		fatal(fmt.Errorf("the spec has %d workloads; pass -o DIR to write one .swf per workload", len(entries)))
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, e := range entries {
		path := filepath.Join(*out, e.Config.Name+".swf")
		writeEntry(e, path)
		fmt.Fprintf(os.Stderr, "gentrace: wrote %s (%d jobs)\n", path, e.Config.Jobs)
	}
}

// resolveEntries turns the flags — or the spec, with flags as overrides
// — into the list of workloads (config + clients) to materialize.
func resolveEntries(specPath, preset string, jobs int, seed uint64) []spec.ResolvedWorkload {
	if specPath == "" {
		cfg, err := workload.Scaled(preset, jobs)
		if err != nil {
			fatal(err)
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		return []spec.ResolvedWorkload{{Config: cfg}}
	}
	s, err := spec.Load(specPath)
	if err != nil {
		fatal(err)
	}
	var ov spec.Overrides
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "jobs":
			ov.Jobs = &jobs
		case "preset":
			fatal(fmt.Errorf("-preset conflicts with -spec (the spec lists its workloads)"))
		}
	})
	s.Apply(ov)
	entries, err := s.ResolvedWorkloads()
	if err != nil {
		fatal(err)
	}
	if seed != 0 {
		for i := range entries {
			entries[i].Config.Seed = seed
		}
	}
	return entries
}

// headeredSource is a streaming generator that can describe itself:
// both the single-population GenSource and the multi-client MultiSource.
type headeredSource interface {
	workload.Source
	Header() swf.Header
}

// newSource builds the streaming generator for one entry.
func newSource(e spec.ResolvedWorkload) headeredSource {
	if len(e.Clients) > 0 {
		m, err := workload.NewMultiSource(e.Config, e.Clients)
		if err != nil {
			fatal(err)
		}
		return m
	}
	g, err := workload.NewGenSource(e.Config)
	if err != nil {
		fatal(err)
	}
	return g
}

// streamEntries writes each workload with the bounded-memory generator:
// jobs go from the arrival sampler straight into the SWF writer, so a
// million-job trace costs megabytes, not gigabytes. The -o handling
// mirrors the preloading path (single file without -spec, directory
// with one).
func streamEntries(entries []spec.ResolvedWorkload, specPath, out string) {
	if specPath == "" || (out == "" && len(entries) == 1) {
		streamTrace(newSource(entries[0]), out)
		return
	}
	if out == "" {
		fatal(fmt.Errorf("the spec has %d workloads; pass -o DIR to write one .swf per workload", len(entries)))
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		fatal(err)
	}
	for _, e := range entries {
		path := filepath.Join(out, e.Config.Name+".swf")
		streamTrace(newSource(e), path)
		fmt.Fprintf(os.Stderr, "gentrace: wrote %s (%d jobs, streamed)\n", path, e.Config.Jobs)
	}
}

// streamTrace pipes one streaming generator into one SWF file.
func streamTrace(g headeredSource, out string) {
	dst := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dst = f
	}
	w := swf.NewWriter(dst)
	h := g.Header()
	if err := w.WriteHeader(&h); err != nil {
		fatal(err)
	}
	for {
		j, err := g.NextJob()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		if err := w.WriteJob(&j); err != nil {
			fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
}

func generate(e spec.ResolvedWorkload) *trace.Workload {
	var w *trace.Workload
	var err error
	if len(e.Clients) > 0 {
		w, err = workload.GenerateMulti(e.Config, e.Clients)
	} else {
		w, err = workload.Generate(e.Config)
	}
	if err != nil {
		fatal(err)
	}
	return w
}

func printStats(w *trace.Workload) {
	s := trace.ComputeStats(w)
	fmt.Printf("workload      %s\n", s.Name)
	fmt.Printf("machine       %d processors\n", s.MaxProcs)
	fmt.Printf("jobs          %d\n", s.Jobs)
	fmt.Printf("users         %d\n", s.Users)
	if len(w.Clients) > 0 {
		fmt.Printf("clients       %d (%v)\n", len(w.Clients), w.Clients)
	}
	fmt.Printf("duration      %d s (%.1f days)\n", s.DurationSec, float64(s.DurationSec)/86400)
	fmt.Printf("offered load  %.2f\n", s.OfferedLoad)
	fmt.Printf("mean runtime  %.0f s (median %d s)\n", s.MeanRunTime, s.MedianRunTime)
	fmt.Printf("mean request  %.0f s (mean over-estimation %.1fx)\n", s.MeanRequested, s.MeanOverestim)
	fmt.Printf("mean width    %.1f procs (max %d)\n", s.MeanProcsPerJob, s.MaxProcsPerJob)
}

// writeEntry writes one preloaded workload. Multi-client entries go
// through the streaming writer instead: the generated jobs survive
// cleaning untouched, so the bytes match the preloading path, and the
// MultiSource header carries the per-client Partition comments that
// make the trace self-describing.
func writeEntry(e spec.ResolvedWorkload, out string) {
	if len(e.Clients) > 0 {
		streamTrace(newSource(e), out)
		return
	}
	writeTrace(generate(e), out)
}

func writeTrace(w *trace.Workload, out string) {
	dst := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dst = f
	}
	tr := &swf.Trace{
		Header: swf.Header{MaxProcs: w.MaxProcs, MaxJobs: int64(len(w.Jobs))},
		Jobs:   w.Jobs,
	}
	if err := swf.Write(dst, tr); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gentrace:", err)
	os.Exit(1)
}
