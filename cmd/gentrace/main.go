// Command gentrace generates a synthetic SWF workload from one of the
// Table-4 presets (or a custom size) and writes it to stdout or a file.
//
// Usage:
//
//	gentrace -preset Curie -jobs 5000 -o curie.swf
//	gentrace -preset KTH-SP2 -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/swf"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	preset := flag.String("preset", "KTH-SP2", "workload preset (one of "+fmt.Sprint(workload.PresetNames())+")")
	jobs := flag.Int("jobs", 0, "scale the preset down to this many jobs (0 = full Table-4 size)")
	seed := flag.Uint64("seed", 0, "override the preset's deterministic seed (0 = keep)")
	out := flag.String("o", "", "output SWF path (default stdout)")
	stats := flag.Bool("stats", false, "print workload statistics instead of the trace")
	flag.Parse()

	cfg, err := workload.Scaled(*preset, *jobs)
	if err != nil {
		fatal(err)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		fatal(err)
	}

	if *stats {
		s := trace.ComputeStats(w)
		fmt.Printf("workload      %s\n", s.Name)
		fmt.Printf("machine       %d processors\n", s.MaxProcs)
		fmt.Printf("jobs          %d\n", s.Jobs)
		fmt.Printf("users         %d\n", s.Users)
		fmt.Printf("duration      %d s (%.1f days)\n", s.DurationSec, float64(s.DurationSec)/86400)
		fmt.Printf("offered load  %.2f\n", s.OfferedLoad)
		fmt.Printf("mean runtime  %.0f s (median %d s)\n", s.MeanRunTime, s.MedianRunTime)
		fmt.Printf("mean request  %.0f s (mean over-estimation %.1fx)\n", s.MeanRequested, s.MeanOverestim)
		fmt.Printf("mean width    %.1f procs (max %d)\n", s.MeanProcsPerJob, s.MaxProcsPerJob)
		return
	}

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dst = f
	}
	tr := &swf.Trace{
		Header: swf.Header{MaxProcs: w.MaxProcs, MaxJobs: int64(len(w.Jobs))},
		Jobs:   w.Jobs,
	}
	if err := swf.Write(dst, tr); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gentrace:", err)
	os.Exit(1)
}
