package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: some cpu
BenchmarkSchedPickEASYSJBF/incremental-8         	35819911	        33.3 ns/op	         0 B/op	       0 allocs/op
BenchmarkSchedPickEASYSJBF/incremental-8         	35819911	        31.1 ns/op	         0 B/op	       0 allocs/op
BenchmarkSchedPickEASYSJBF/reference-8           	    1042	   1148276 ns/op	  163840 B/op	      21 allocs/op
BenchmarkSchedSimEndToEnd/easy-sjbf-incremental-8	      10	 101000000 ns/op	 5000000 B/op	   60000 allocs/op
BenchmarkTable1_KTHSP2-8	       1	1200000000 ns/op	        21.95 EASY-AVEbsld	        13.20 Clairvoyant-AVEbsld
PASS
ok  	repro	12.3s
`

func parsed(t *testing.T) map[string]Measurement {
	t.Helper()
	m, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseBench(t *testing.T) {
	m := parsed(t)
	inc, ok := m["BenchmarkSchedPickEASYSJBF/incremental"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: keys %v", m)
	}
	if inc.NsPerOp != 31.1 {
		t.Errorf("repeats not collapsed to min: ns/op = %v", inc.NsPerOp)
	}
	if !inc.HasAllocs || inc.AllocsPerOp != 0 {
		t.Errorf("allocs/op misparsed: %+v", inc)
	}
	if ref := m["BenchmarkSchedPickEASYSJBF/reference"]; ref.AllocsPerOp != 21 {
		t.Errorf("reference allocs = %v, want 21", ref.AllocsPerOp)
	}
	// The Table1 line carries custom metrics; its ns/op must still parse.
	if tb := m["BenchmarkTable1_KTHSP2"]; tb.NsPerOp != 1.2e9 || tb.HasAllocs {
		t.Errorf("custom-metric line misparsed: %+v", tb)
	}
}

func TestDiffPasses(t *testing.T) {
	m := parsed(t)
	out, failures := diff(m, m, 25, 1000)
	if failures != 0 {
		t.Fatalf("self-diff failed:\n%s", out)
	}
}

func TestDiffCatchesSlowdown(t *testing.T) {
	base := parsed(t)
	cur := parsed(t)
	slow := cur["BenchmarkSchedPickEASYSJBF/reference"]
	slow.NsPerOp *= 2 // the deliberate 2x slowdown the gate must catch
	cur["BenchmarkSchedPickEASYSJBF/reference"] = slow
	out, failures := diff(base, cur, 25, 1000)
	if failures != 1 || !strings.Contains(out, "SLOWER") {
		t.Fatalf("2x slowdown not caught (%d failures):\n%s", failures, out)
	}
	// 25% exactly is within threshold; 26% is not.
	cur = parsed(t)
	edge := cur["BenchmarkSchedPickEASYSJBF/reference"]
	edge.NsPerOp = base["BenchmarkSchedPickEASYSJBF/reference"].NsPerOp * 1.24
	cur["BenchmarkSchedPickEASYSJBF/reference"] = edge
	if _, failures := diff(base, cur, 25, 1000); failures != 0 {
		t.Error("24% slowdown failed a 25% threshold")
	}
}

func TestDiffNoiseFloorSkipsNsGateOnly(t *testing.T) {
	base := parsed(t)
	cur := parsed(t)
	// A nanosecond-scale benchmark doubling is clock noise across
	// machines: no ns/op failure while it stays under the floor...
	inc := cur["BenchmarkSchedPickEASYSJBF/incremental"]
	inc.NsPerOp *= 2
	cur["BenchmarkSchedPickEASYSJBF/incremental"] = inc
	if out, failures := diff(base, cur, 25, 1000); failures != 0 {
		t.Fatalf("sub-floor ns/op change failed the gate:\n%s", out)
	}
	// ...but crossing the floor is a real slowdown again.
	inc.NsPerOp = 2000
	cur["BenchmarkSchedPickEASYSJBF/incremental"] = inc
	if out, failures := diff(base, cur, 25, 1000); failures != 1 || !strings.Contains(out, "SLOWER") {
		t.Fatalf("above-floor slowdown not caught (%d failures):\n%s", failures, out)
	}
}

func TestDiffZeroAllocBaselineIsAGuarantee(t *testing.T) {
	base := parsed(t)
	cur := parsed(t)
	inc := cur["BenchmarkSchedPickEASYSJBF/incremental"]
	inc.AllocsPerOp = 1
	cur["BenchmarkSchedPickEASYSJBF/incremental"] = inc
	out, failures := diff(base, cur, 25, 1000)
	if failures != 1 || !strings.Contains(out, "ALLOCS 0 -> 1") {
		t.Fatalf("0 -> 1 allocs/op not caught (%d failures):\n%s", failures, out)
	}
}

func TestDiffMissingBenchmarkFails(t *testing.T) {
	base := parsed(t)
	cur := parsed(t)
	delete(cur, "BenchmarkSchedPickEASYSJBF/reference")
	out, failures := diff(base, cur, 25, 1000)
	if failures != 1 || !strings.Contains(out, "MISSING") {
		t.Fatalf("lost coverage not caught (%d failures):\n%s", failures, out)
	}
}

func TestDiffNewBenchmarkIsNotAFailure(t *testing.T) {
	base := parsed(t)
	cur := parsed(t)
	cur["BenchmarkBrandNew"] = Measurement{NsPerOp: 1}
	out, failures := diff(base, cur, 25, 1000)
	if failures != 0 || !strings.Contains(out, "not in baseline") {
		t.Fatalf("new benchmark handled wrong (%d failures):\n%s", failures, out)
	}
}
