// Command benchdiff is the CI perf-regression gate: it parses `go test
// -bench` output, compares ns/op and allocs/op against a checked-in
// JSON baseline, and exits non-zero when any benchmark slowed down (or
// allocates more) beyond the threshold. With -update it instead rewrites
// the baseline from the measured numbers — the escape hatch for when a
// legitimate speedup (or an intentional trade-off) moves the floor.
//
// Usage:
//
//	go test -run '^$' -bench 'SchedPick|SchedSimEndToEnd' -benchmem . | \
//	    go run ./cmd/benchdiff -baseline BENCH_baseline.json -
//
//	go run ./cmd/benchdiff -baseline BENCH_baseline.json -update bench.out
//
// Benchmark names are normalized by stripping the trailing -GOMAXPROCS
// suffix so baselines transfer across machines with different core
// counts; duplicate measurements of one benchmark (e.g. -count 3) are
// collapsed to their minimum, the standard noise filter. ns/op
// regressions are judged against -threshold (percent), but only when
// the benchmark is slower than -min-ns on at least one side: for
// nanosecond-scale cache-hit paths, a 25% window is below cross-machine
// clock variance, so they are reported informationally and gated on
// allocs/op alone (where zero really is zero on every machine).
// allocs/op is held to the same threshold, except a zero-alloc
// baseline is a hard guarantee: any allocation at all fails the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Measurement is one benchmark's tracked quantities.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// HasAllocs records whether the run reported allocs/op at all
	// (requires -benchmem); it keeps a baseline made with -benchmem
	// from failing against output made without it in a confusing way.
	HasAllocs bool `json:"has_allocs"`
}

// Baseline is the checked-in BENCH_baseline.json schema.
type Baseline struct {
	// Note documents how to regenerate the file.
	Note       string                 `json:"note"`
	Benchmarks map[string]Measurement `json:"benchmarks"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline JSON to compare against (or write with -update)")
	threshold := flag.Float64("threshold", 25, "maximum allowed slowdown in percent")
	minNs := flag.Float64("min-ns", 1000, "ns/op noise floor: benchmarks under this on both sides are gated on allocs/op only")
	update := flag.Bool("update", false, "rewrite the baseline from the measured numbers instead of comparing")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-baseline file] [-threshold pct] [-update] bench-output-file (- for stdin)")
		os.Exit(2)
	}
	if *threshold <= 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: -threshold must be > 0, got %v\n", *threshold)
		os.Exit(2)
	}

	var in io.Reader
	if name := flag.Arg(0); name == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	current, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(current) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found in input"))
	}

	if *update {
		if err := writeBaseline(*baselinePath, current); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(current), *baselinePath)
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("parse %s: %w", *baselinePath, err))
	}

	report, failures := diff(base.Benchmarks, current, *threshold, *minNs)
	fmt.Print(report)
	if failures > 0 {
		fmt.Printf("\nbenchdiff: FAIL — %d regression(s) beyond %.0f%% (regenerate %s with -update only if the change is intentional)\n",
			failures, *threshold, *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("\nbenchdiff: ok — %d benchmarks within %.0f%% of baseline\n", len(base.Benchmarks), *threshold)
}

// benchLine matches a standard testing.B result line: name, iteration
// count, then value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.+)$`)

// gomaxprocsSuffix is the trailing -N testing appends to benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts ns/op and allocs/op per normalized benchmark name,
// collapsing repeated measurements (-count > 1) to their minimum.
func parseBench(r io.Reader) (map[string]Measurement, error) {
	out := map[string]Measurement{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		fields := strings.Fields(m[2])
		var meas Measurement
		seenNs := false
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q", name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				meas.NsPerOp = v
				seenNs = true
			case "allocs/op":
				meas.AllocsPerOp = v
				meas.HasAllocs = true
			}
		}
		if !seenNs {
			continue // custom-metric-only line
		}
		if prev, ok := out[name]; ok {
			// Minimum across repeats: the least-noisy estimate.
			if prev.NsPerOp < meas.NsPerOp {
				meas.NsPerOp = prev.NsPerOp
			}
			if prev.HasAllocs && (!meas.HasAllocs || prev.AllocsPerOp < meas.AllocsPerOp) {
				meas.AllocsPerOp = prev.AllocsPerOp
				meas.HasAllocs = true
			}
		}
		out[name] = meas
	}
	return out, sc.Err()
}

// diff renders the comparison table and counts gate failures. Every
// baseline benchmark must be present in the current run — losing
// coverage silently would defeat the gate; benchmarks absent from the
// baseline are reported but do not fail (they will be picked up on the
// next -update).
func diff(base, current map[string]Measurement, thresholdPct, minNs float64) (string, int) {
	var b strings.Builder
	failures := 0
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base[name]
		got, ok := current[name]
		if !ok {
			fmt.Fprintf(&b, "MISSING  %-58s baseline %.1f ns/op, not measured\n", name, want.NsPerOp)
			failures++
			continue
		}
		status := "ok     "
		pct := 100 * (got.NsPerOp - want.NsPerOp) / want.NsPerOp
		switch {
		case want.NsPerOp < minNs && got.NsPerOp < minNs:
			// Below the noise floor on both sides: ns/op is
			// informational; the allocs gate below still applies.
			status = "fast   "
		case pct > thresholdPct:
			status = "SLOWER "
			failures++
		}
		fmt.Fprintf(&b, "%s  %-58s %12.1f -> %12.1f ns/op (%+6.1f%%)", status, name, want.NsPerOp, got.NsPerOp, pct)
		if want.HasAllocs && got.HasAllocs {
			switch {
			case want.AllocsPerOp == 0 && got.AllocsPerOp > 0:
				// A zero-alloc baseline is a guarantee, not a measurement.
				fmt.Fprintf(&b, "  ALLOCS 0 -> %.0f allocs/op", got.AllocsPerOp)
				failures++
			case want.AllocsPerOp > 0 && 100*(got.AllocsPerOp-want.AllocsPerOp)/want.AllocsPerOp > thresholdPct:
				fmt.Fprintf(&b, "  ALLOCS %.0f -> %.0f allocs/op", want.AllocsPerOp, got.AllocsPerOp)
				failures++
			default:
				fmt.Fprintf(&b, "  allocs %.0f -> %.0f", want.AllocsPerOp, got.AllocsPerOp)
			}
		}
		fmt.Fprintln(&b)
	}
	var extra []string
	for name := range current {
		if _, ok := base[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(&b, "new      %-58s %12.1f ns/op (not in baseline)\n", name, current[name].NsPerOp)
	}
	return b.String(), failures
}

func writeBaseline(path string, current map[string]Measurement) error {
	base := Baseline{
		Note: "Performance baseline for the CI perf gate (cmd/benchdiff). " +
			"Regenerate after an intentional performance change with: " +
			"go test -run '^$' -bench 'BenchmarkSchedPick|BenchmarkSchedSim' -benchmem . " +
			"| go run ./cmd/benchdiff -baseline BENCH_baseline.json -update -",
		Benchmarks: current,
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
