package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestUsageErrors pins the flag-combination validation: every
// contradictory combination exits 2 with a message naming the conflict,
// instead of silently ignoring one of the flags.
func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"stream+disrupt", []string{"-stream", "-disrupt", "light"}, "drop -disrupt"},
		{"stream+replay", []string{"-stream", "-status", "replay", "-swf", "x.swf"}, "cannot replay"},
		{"triple+policy", []string{"-triple", "easy", "-policy", "fcfs"}, "drop -policy"},
		{"triple+predictor", []string{"-triple", "easy", "-predictor", "ave2"}, "drop -predictor"},
		{"triple+corrector", []string{"-triple", "easy", "-corrector", "doubling"}, "drop -corrector"},
		{"triple+loss", []string{"-triple", "easy", "-loss", "over=sq,under=lin,w=const"}, "drop -loss"},
		{"maxprocs-without-swf", []string{"-maxprocs", "64"}, "needs -swf"},
		{"status-without-swf", []string{"-status", "skip"}, "needs -swf"},
		{"preset+swf", []string{"-swf", "x.swf", "-preset", "Curie"}, "conflicts with -swf"},
		{"jobs+swf", []string{"-swf", "x.swf", "-jobs", "100"}, "conflicts with -swf"},
		{"disrupt-seed-without-disrupt", []string{"-disrupt-seed", "7"}, "needs -disrupt"},
		{"routing-without-clusters", []string{"-routing", "spillover"}, "needs -clusters"},
		{"bad-clusters", []string{"-clusters", "100,zero"}, "bad processor count"},
		{"bad-routing", []string{"-clusters", "100", "-routing", "random"}, "unknown router"},
		{"trace-to-stdout", []string{"-trace", "-"}, "cannot write to stdout"},
		{"trace-to-dev-stdout", []string{"-trace", "/dev/stdout"}, "cannot write to stdout"},
		{"trace-cpuprofile-collision", []string{"-trace", "out.x", "-cpuprofile", "out.x"}, "-trace and -cpuprofile both write out.x"},
		{"trace-memprofile-collision", []string{"-trace", "out.x", "-memprofile", "out.x"}, "-trace and -memprofile both write out.x"},
		{"unknown-flag", []string{"-flood", "everything"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.want)
			}
		})
	}
}

// TestRunSingle is the classic path end to end at a tiny scale.
func TestRunSingle(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-jobs", "150", "-triple", "easy++"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	for _, want := range []string{"KTH-SP2", "AVEbsld", "utilization"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("output missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestRunFederated: the federated preloading path prints the routing
// policy and one line per cluster.
func TestRunFederated(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-jobs", "150", "-triple", "easy++",
		"-clusters", "100,slow=64x0.5", "-routing", "least-loaded"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"routing       least-loaded", "over 2 clusters", "cluster c0", "cluster slow"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunFederatedDisrupted: -disrupt on a federated run generates
// per-cluster scripts (the scenario line reports merged counts).
func TestRunFederatedDisrupted(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-jobs", "150", "-triple", "easy",
		"-clusters", "100,100", "-disrupt", "light", "-disrupt-seed", "9"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "scenario      light+keep/federated") {
		t.Errorf("scenario line missing:\n%s", stdout.String())
	}
}

// TestRunTraced pins the -trace flag end to end: the traced run's
// stdout is byte-identical to the untraced run's, and every line of the
// trace file passes the schema validator.
func TestRunTraced(t *testing.T) {
	args := []string{"-jobs", "150", "-triple", "easy++"}
	var bare, bareErr bytes.Buffer
	if code := run(args, &bare, &bareErr); code != 0 {
		t.Fatalf("untraced exit %d, stderr: %s", code, bareErr.String())
	}

	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var traced, tracedErr bytes.Buffer
	if code := run(append(args, "-trace", path), &traced, &tracedErr); code != 0 {
		t.Fatalf("traced exit %d, stderr: %s", code, tracedErr.String())
	}
	if bare.String() != traced.String() {
		t.Fatalf("tracing perturbed the run:\n%s\nvs\n%s", bare.String(), traced.String())
	}

	lines, picks := 0, 0
	err := obs.ReadFile(path, func(line int, ev obs.Event) error {
		lines++
		if err := obs.ValidateEvent(&ev); err != nil {
			return err
		}
		if ev.Kind == obs.KindPick {
			picks++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if lines == 0 || picks == 0 {
		t.Fatalf("trace too thin: %d lines, %d picks", lines, picks)
	}
}

// TestRunProfiles pins -cpuprofile/-memprofile: both files exist and
// are non-empty after the run.
func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-jobs", "150", "-triple", "easy",
		"-cpuprofile", cpu, "-memprofile", mem}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

// TestRunFederatedStreaming: the bounded-memory federated path.
func TestRunFederatedStreaming(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-jobs", "150", "-triple", "easy++",
		"-clusters", "100,64", "-stream"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"streamed", "routing       round-robin", "cluster c1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
