package main

// This file wires simsched's observability flags: -trace (the
// structured decision-trace JSONL, summarized by tracestat),
// -cpuprofile/-memprofile (pprof files) and -pprof (a live
// net/http/pprof endpoint). run() owns the observer's lifetime, so
// cleanup is ordinary deferred code — no exit hooks needed.

import (
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/obs"
)

// traceConflict reports a usage conflict on the -trace destination:
// the metric summary owns stdout, so a trace aimed there would
// interleave JSONL with the report; and the profile writers cannot
// share the trace's file. Empty means no conflict.
func traceConflict(trace, cpuProfile, memProfile string) string {
	if trace == "" {
		return ""
	}
	if trace == "-" || trace == "/dev/stdout" {
		return "-trace cannot write to stdout (the metric summary owns it); give it a file path"
	}
	if trace == cpuProfile {
		return "-trace and -cpuprofile both write " + trace
	}
	if trace == memProfile {
		return "-trace and -memprofile both write " + trace
	}
	return ""
}

// observer holds the live observability state of one run.
type observer struct {
	cpuFile *os.File
	memPath string
	trace   *obs.JSONL
}

// startObserve starts the requested profilers and opens the trace.
// The pprof endpoint serves in the background for the process lifetime.
func startObserve(o options, stderr io.Writer) (*observer, error) {
	ob := &observer{memPath: o.memProfile}
	if o.pprofAddr != "" {
		go func() {
			// The blank net/http/pprof import registers its handlers on
			// the default mux.
			if err := http.ListenAndServe(o.pprofAddr, nil); err != nil {
				fmt.Fprintln(stderr, "simsched: pprof:", err)
			}
		}()
		fmt.Fprintf(stderr, "simsched: pprof listening on http://%s/debug/pprof/\n", o.pprofAddr)
	}
	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		ob.cpuFile = f
	}
	if o.traceFile != "" {
		t, err := obs.OpenJSONL(o.traceFile)
		if err != nil {
			ob.close()
			return nil, err
		}
		ob.trace = t
	}
	return ob, nil
}

// tracer returns the run's Tracer (nil when -trace is off — the
// engine's zero-cost path).
func (ob *observer) tracer() obs.Tracer {
	if ob.trace == nil {
		return nil
	}
	return ob.trace
}

// close stops the CPU profile, writes the heap profile and flushes the
// trace. A trace write error surfaces here (it is sticky), failing the
// run rather than leaving a silently truncated file.
func (ob *observer) close() error {
	var firstErr error
	if ob.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := ob.cpuFile.Close(); err != nil {
			firstErr = err
		}
		ob.cpuFile = nil
	}
	if ob.memPath != "" {
		if err := writeHeapProfile(ob.memPath); err != nil && firstErr == nil {
			firstErr = err
		}
		ob.memPath = ""
	}
	if ob.trace != nil {
		if err := ob.trace.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		ob.trace = nil
	}
	return firstErr
}

// writeHeapProfile dumps live-heap allocations (after a GC, so the
// profile reflects retained memory, not garbage).
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
