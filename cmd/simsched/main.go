// Command simsched runs a single scheduling simulation — one workload,
// one heuristic triple — and prints the schedule metrics. The workload is
// either a generated preset or an SWF file from disk (e.g. a real log
// downloaded from the Parallel Workloads Archive).
//
// Usage:
//
//	simsched -preset Curie -jobs 5000 -triple best
//	simsched -swf CTC-SP2-1996-3.1-cln.swf -triple easy++
//	simsched -swf CTC-SP2-1996-3.1-cln.swf -status replay        # honor the log's cancellations
//	simsched -preset KTH-SP2 -disrupt moderate -disrupt-seed 7   # synthetic drains + cancels
//	simsched -preset KTH-SP2 -policy easy-sjbf -predictor ml -loss "over=sq,under=lin,w=largearea" -corrector incremental
//	simsched -swf huge.swf -stream                               # bounded memory: O(live jobs), any trace length
//	simsched -preset huge-synthetic -jobs 0 -stream              # a million generated jobs, streamed
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/correct"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/swf"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	preset := flag.String("preset", "KTH-SP2", "workload preset")
	jobs := flag.Int("jobs", 5000, "scale the preset to this many jobs (0 = full size)")
	swfPath := flag.String("swf", "", "load this SWF file instead of generating a preset")
	maxProcs := flag.Int64("maxprocs", 0, "machine size override for -swf (0 = use header)")
	status := flag.String("status", "keep", "how -swf honors cancelled/failed jobs: keep | skip | truncate | replay (replay re-kills never-ran cancelled jobs at their logged instant)")
	disrupt := flag.String("disrupt", "none", "synthetic disruption intensity: none | light | moderate | heavy")
	disruptSeed := flag.Uint64("disrupt-seed", 1, "seed for the synthetic disruption generator")
	triple := flag.String("triple", "", "named triple: easy | easy++ | best | clairvoyant | clairvoyant-sjbf")
	policy := flag.String("policy", "easy-sjbf", "scheduling policy: fcfs | easy | easy-sjbf | conservative")
	predictor := flag.String("predictor", "ml", "prediction technique: clairvoyant | requested | ave2 | ml")
	lossName := flag.String("loss", ml.ELoss.Name(), "ML loss, e.g. \"over=sq,under=lin,w=largearea\"")
	corrector := flag.String("corrector", "incremental", "correction: requested | incremental | doubling")
	stream := flag.Bool("stream", false, "bounded-memory run: pull the workload lazily (SWF from disk, or the streaming generator for presets) and compute metrics one-pass; peak memory is O(live jobs), so million-job traces fit")
	flag.Parse()

	if *stream {
		runStreaming(*preset, *jobs, *swfPath, *maxProcs, *status, *disrupt,
			*triple, *policy, *predictor, *lossName, *corrector)
		return
	}

	w, script, err := loadWorkload(*preset, *jobs, *swfPath, *maxProcs, *status)
	if err != nil {
		fatal(err)
	}
	cfg, err := buildConfig(*triple, *policy, *predictor, *lossName, *corrector)
	if err != nil {
		fatal(err)
	}
	if *disrupt != "none" {
		in, ok := scenario.IntensityByName(*disrupt)
		if !ok {
			fatal(fmt.Errorf("unknown disruption intensity %q", *disrupt))
		}
		script = scenario.Merge(fmt.Sprintf("%s+%s", *disrupt, *status), script, scenario.Generate(w, in, *disruptSeed))
	}
	cfg.Script = script

	res, err := sim.Run(w, cfg)
	if err != nil {
		fatal(err)
	}
	if errs := sim.ValidateResult(res); len(errs) != 0 {
		fatal(fmt.Errorf("schedule invalid: %v", errs[0]))
	}
	fmt.Printf("workload      %s (%d jobs, %d procs)\n", w.Name, len(w.Jobs), w.MaxProcs)
	fmt.Printf("triple        %s\n", res.Triple)
	if !script.Empty() {
		drains, restores, cancels := script.Counts()
		fmt.Printf("scenario      %s (%d drains, %d restores, %d cancel events)\n", res.Scenario, drains, restores, cancels)
		fmt.Printf("canceled      %d jobs, %d capacity changes\n", res.Canceled, len(res.CapacitySteps))
	}
	fmt.Printf("AVEbsld       %.2f\n", metrics.AVEbsld(res))
	fmt.Printf("max bsld      %.1f\n", metrics.MaxBsld(res))
	fmt.Printf("mean wait     %.0f s\n", metrics.MeanWait(res))
	fmt.Printf("utilization   %.3f\n", metrics.Utilization(res))
	fmt.Printf("corrections   %d\n", res.Corrections)
	fmt.Printf("prediction MAE %.0f s, mean E-Loss %.3g\n", metrics.MAE(res.Jobs), metrics.MeanELoss(res.Jobs))
}

// runStreaming is the -stream path: the workload is never materialized.
// SWF files are scanned from disk through the streaming status/clean
// filters; presets use the bounded-memory generator (same statistical
// structure as the preloading generator, arrival draws differ). The
// -disrupt and -status replay modes need the whole trace to derive
// their scripts and are rejected here.
func runStreaming(preset string, jobs int, swfPath string, maxProcs int64, status, disrupt, triple, policy, predictor, lossName, corrector string) {
	if disrupt != "none" {
		fatal(fmt.Errorf("-stream cannot generate disruption scripts (they sample the whole trace); drop -disrupt"))
	}
	cfg, err := buildConfig(triple, policy, predictor, lossName, corrector)
	if err != nil {
		fatal(err)
	}
	col := metrics.NewCollector()
	cfg.Sink = col

	name, mp, src, err := buildStreamSource(preset, jobs, swfPath, maxProcs, status)
	if err != nil {
		fatal(err)
	}
	res, err := sim.RunStream(name, mp, src, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload      %s (streamed, %d jobs finished, %d procs)\n", name, res.Finished, mp)
	fmt.Printf("triple        %s\n", res.Triple)
	fmt.Printf("AVEbsld       %.2f\n", col.AVEbsld())
	fmt.Printf("max bsld      %.1f\n", col.MaxBsld())
	fmt.Printf("mean wait     %.0f s (p50 %.0f, p95 %.0f, p99 %.0f)\n", col.MeanWait(),
		col.WaitSketch().Quantile(0.50), col.WaitSketch().Quantile(0.95), col.WaitSketch().Quantile(0.99))
	fmt.Printf("utilization   %.3f\n", col.Utilization(res.Makespan, res.MaxProcs))
	fmt.Printf("corrections   %d\n", res.Corrections)
	fmt.Printf("prediction MAE %.0f s, mean E-Loss %.3g\n", col.MAE(), col.MeanELoss())
}

// buildStreamSource assembles the lazy job pipeline and resolves the
// machine size (peeking one record so the SWF header is available).
func buildStreamSource(preset string, jobs int, swfPath string, maxProcs int64, status string) (string, int64, workload.Source, error) {
	if swfPath == "" {
		cfg, err := workload.Scaled(preset, jobs)
		if err != nil {
			return "", 0, nil, err
		}
		g, err := workload.NewGenSource(cfg)
		if err != nil {
			return "", 0, nil, err
		}
		return cfg.Name, cfg.MaxProcs, g, nil
	}

	mode, err := swf.ParseStatusMode(status)
	if err != nil {
		return "", 0, nil, err
	}
	f, err := os.Open(swfPath)
	if err != nil {
		return "", 0, nil, err
	}
	// The file stays open for the whole run; the process exit closes it.
	sc := swf.NewScanner(f)
	first, err := sc.Next()
	if err == io.EOF {
		return "", 0, nil, fmt.Errorf("%s: no jobs", swfPath)
	}
	if err != nil {
		return "", 0, nil, err
	}
	mp := maxProcs
	if mp <= 0 {
		mp = sc.Header().Procs()
	}
	if mp <= 0 {
		return "", 0, nil, fmt.Errorf("%s: machine size unknown (no MaxProcs/MaxNodes header; pass -maxprocs)", swfPath)
	}
	var src workload.Source = workload.Prepend([]swf.Job{first}, workload.NewScanSource(sc))
	src, err = workload.NewStatusSource(src, mode)
	if err != nil {
		return "", 0, nil, err
	}
	return swfPath, mp, workload.NewCleanSource(src, mp), nil
}

// loadWorkload builds the scheduling problem. For SWF files the status
// mode is applied before cleaning; replay mode additionally derives the
// cancellation script from the log's own status fields.
func loadWorkload(preset string, jobs int, swfPath string, maxProcs int64, status string) (*trace.Workload, *scenario.Script, error) {
	if swfPath != "" {
		mode, err := swf.ParseStatusMode(status)
		if err != nil {
			return nil, nil, err
		}
		f, err := os.Open(swfPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		raw, err := swf.Parse(f)
		if err != nil {
			return nil, nil, err
		}
		w, err := trace.FromSWF(swfPath, swf.ApplyStatus(raw, mode), maxProcs)
		if err != nil {
			return nil, nil, err
		}
		var script *scenario.Script
		if mode == swf.StatusReplay {
			script = scenario.CancellationsFromSWF(swfPath+"/cancellations", raw)
		}
		return w, script, nil
	}
	cfg, err := workload.Scaled(preset, jobs)
	if err != nil {
		return nil, nil, err
	}
	w, err := workload.Generate(cfg)
	return w, nil, err
}

func buildConfig(triple, policy, predictor, lossName, corrector string) (sim.Config, error) {
	if triple != "" {
		switch strings.ToLower(triple) {
		case "easy":
			return core.EASY().Config(), nil
		case "easy++":
			return core.EASYPlusPlus().Config(), nil
		case "best":
			return core.PaperBest().Config(), nil
		case "clairvoyant":
			return core.ClairvoyantEASY().Config(), nil
		case "clairvoyant-sjbf":
			return core.ClairvoyantSJBF().Config(), nil
		default:
			return sim.Config{}, fmt.Errorf("unknown triple %q", triple)
		}
	}
	var t core.Triple
	switch strings.ToLower(predictor) {
	case "clairvoyant":
		t.Predictor = core.PredClairvoyant
	case "requested":
		t.Predictor = core.PredRequested
	case "ave2":
		t.Predictor = core.PredAve2
	case "ml":
		t.Predictor = core.PredLearning
		loss, err := findLoss(lossName)
		if err != nil {
			return sim.Config{}, err
		}
		t.Loss = loss
	default:
		return sim.Config{}, fmt.Errorf("unknown predictor %q", predictor)
	}
	switch strings.ToLower(corrector) {
	case "requested":
		t.Corrector = correct.RequestedTime{}
	case "incremental":
		t.Corrector = correct.Incremental{}
	case "doubling":
		t.Corrector = correct.RecursiveDoubling{}
	default:
		return sim.Config{}, fmt.Errorf("unknown corrector %q", corrector)
	}
	cfg := sim.Config{Predictor: t.NewPredictor(), Corrector: t.Corrector}
	switch strings.ToLower(policy) {
	case "fcfs":
		cfg.Policy = sched.NewFCFS()
	case "easy":
		cfg.Policy = sched.NewEASY(sched.FCFSOrder)
	case "easy-sjbf":
		cfg.Policy = sched.NewEASY(sched.SJBFOrder)
	case "conservative":
		cfg.Policy = sched.NewConservative()
	default:
		return sim.Config{}, fmt.Errorf("unknown policy %q", policy)
	}
	return cfg, nil
}

func findLoss(name string) (ml.Loss, error) {
	for _, l := range ml.AllLosses() {
		if l.Name() == name {
			return l, nil
		}
	}
	return ml.Loss{}, fmt.Errorf("unknown loss %q (see ml.AllLosses)", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simsched:", err)
	os.Exit(1)
}
