// Command simsched runs a single scheduling simulation — one workload,
// one heuristic triple — and prints the schedule metrics. The workload is
// either a generated preset or an SWF file from disk (e.g. a real log
// downloaded from the Parallel Workloads Archive).
//
// Usage:
//
//	simsched -preset Curie -jobs 5000 -triple best
//	simsched -swf CTC-SP2-1996-3.1-cln.swf -triple easy++
//	simsched -swf CTC-SP2-1996-3.1-cln.swf -status replay        # honor the log's cancellations
//	simsched -preset KTH-SP2 -disrupt moderate -disrupt-seed 7   # synthetic drains + cancels
//	simsched -preset KTH-SP2 -policy easy-sjbf -predictor ml -loss "over=sq,under=lin,w=largearea" -corrector incremental
//	simsched -swf huge.swf -stream                               # bounded memory: O(live jobs), any trace length
//	simsched -preset huge-synthetic -jobs 0 -stream              # a million generated jobs, streamed
//
// With -wspec the workload comes from an experiment spec file instead
// of -preset: the spec must resolve to exactly one workload entry, and
// multi-client entries (a clients: block — see docs/WORKLOADS.md) get a
// per-client metrics split next to the global numbers:
//
//	simsched -wspec specs/clients.yaml -triple best -stream
//
// With -clusters the run is federated: jobs are routed across the
// listed clusters by the -routing policy, each cluster runs its own
// policy session, and the output gains a per-cluster split. -disrupt
// then generates an independent disruption script per cluster (drains
// scaled to each cluster's size, under per-cluster derived seeds):
//
//	simsched -preset KTH-SP2 -clusters 100,64x1.5,slow=32x0.5 -routing least-loaded
//	simsched -preset KTH-SP2 -clusters 100,100 -disrupt moderate
//
// Contradictory flag combinations are rejected up front with exit
// status 2 (usage error) rather than silently ignored: -stream cannot
// honor -disrupt or -status replay (both sample the whole trace),
// -triple excludes the per-axis -policy/-predictor/-corrector/-loss
// flags, -maxprocs and -status only describe -swf inputs, -preset and
// -jobs only describe generated ones, -disrupt-seed needs -disrupt,
// -routing needs -clusters, and -wspec supplies the whole workload so
// it excludes -preset/-jobs/-swf/-maxprocs/-status.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/correct"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/swf"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// options is the parsed flag set; run validates the combinations before
// dispatching.
type options struct {
	preset      string
	jobs        int
	wspec       string
	swfPath     string
	maxProcs    int64
	status      string
	disrupt     string
	disruptSeed uint64
	triple      string
	policy      string
	predictor   string
	lossName    string
	corrector   string
	stream      bool
	shards      int
	clusters    []platform.Cluster
	routing     string
	traceFile   string
	cpuProfile  string
	memProfile  string
	pprofAddr   string
	// tracer is the opened flight recorder (nil = tracing off).
	tracer obs.Tracer
}

// run is the testable entry point: parse, validate the flag surface,
// dispatch. Exit status 2 is a usage error, 1 a runtime failure.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simsched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.preset, "preset", "KTH-SP2", "workload preset")
	fs.IntVar(&o.jobs, "jobs", 5000, "scale the preset to this many jobs (0 = full size)")
	fs.StringVar(&o.wspec, "wspec", "", "generate the workload of this spec file (must resolve to exactly one workload entry; clients: blocks get a per-client split)")
	fs.StringVar(&o.swfPath, "swf", "", "load this SWF file instead of generating a preset")
	fs.Int64Var(&o.maxProcs, "maxprocs", 0, "machine size override for -swf (0 = use header)")
	fs.StringVar(&o.status, "status", "keep", "how -swf honors cancelled/failed jobs: keep | skip | truncate | replay (replay re-kills never-ran cancelled jobs at their logged instant)")
	fs.StringVar(&o.disrupt, "disrupt", "none", "synthetic disruption intensity: none | light | moderate | heavy")
	fs.Uint64Var(&o.disruptSeed, "disrupt-seed", 1, "seed for the synthetic disruption generator")
	fs.StringVar(&o.triple, "triple", "", "named triple: easy | easy++ | best | clairvoyant | clairvoyant-sjbf")
	fs.StringVar(&o.policy, "policy", "easy-sjbf", "scheduling policy: fcfs | easy | easy-sjbf | conservative")
	fs.StringVar(&o.predictor, "predictor", "ml", "prediction technique: clairvoyant | requested | ave2 | ml")
	fs.StringVar(&o.lossName, "loss", ml.ELoss.Name(), "ML loss, e.g. \"over=sq,under=lin,w=largearea\"")
	fs.StringVar(&o.corrector, "corrector", "incremental", "correction: requested | incremental | doubling")
	fs.BoolVar(&o.stream, "stream", false, "bounded-memory run: pull the workload lazily (SWF from disk, or the streaming generator for presets) and compute metrics one-pass; peak memory is O(live jobs), so million-job traces fit")
	fs.IntVar(&o.shards, "shards", 0, "with -clusters and -stream: run the parallel sharded federated driver with this many per-cluster event-loop goroutines (0 = sequential; results are byte-identical for every shard count)")
	clustersFlag := fs.String("clusters", "", "federated platform: comma-separated NAME=PROCS[xSPEED] entries (e.g. \"100,64x1.5,slow=32x0.5\"); empty = classic single machine")
	fs.StringVar(&o.routing, "routing", "", "routing policy in front of -clusters: "+sched.RouterNames+" (default round-robin)")
	fs.StringVar(&o.traceFile, "trace", "", "append the structured decision trace (JSONL; summarize with tracestat) to this file")
	fs.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile of the run to this file")
	fs.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while the run executes")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	usage := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "simsched: "+format+"\n", a...)
		fs.Usage()
		return 2
	}

	// Reject contradictory combinations loudly: every one of these used
	// to silently ignore one of its flags.
	if o.stream && o.disrupt != "none" {
		return usage("-stream cannot generate disruption scripts (they sample the whole trace); drop -disrupt")
	}
	if o.stream && o.status == "replay" {
		return usage("-stream cannot replay logged cancellations (the script needs the whole trace); use -status keep/skip/truncate")
	}
	if o.triple != "" {
		for _, axis := range []string{"policy", "predictor", "corrector", "loss"} {
			if set[axis] {
				return usage("-triple names a complete (policy, predictor, corrector) bundle; drop -%s", axis)
			}
		}
	}
	if o.wspec != "" {
		for _, f := range []string{"preset", "jobs", "swf", "maxprocs", "status"} {
			if set[f] {
				return usage("-wspec supplies the whole workload; drop -%s", f)
			}
		}
	}
	if o.swfPath == "" {
		if set["maxprocs"] {
			return usage("-maxprocs overrides an SWF header; it needs -swf")
		}
		if set["status"] {
			return usage("-status filters an SWF log; it needs -swf")
		}
	} else {
		if set["preset"] {
			return usage("-preset generates a workload; it conflicts with -swf")
		}
		if set["jobs"] {
			return usage("-jobs scales a generated preset; it conflicts with -swf")
		}
	}
	if set["disrupt-seed"] && o.disrupt == "none" {
		return usage("-disrupt-seed seeds the disruption generator; it needs -disrupt")
	}
	if o.routing != "" && *clustersFlag == "" {
		return usage("-routing needs -clusters (a single machine has nothing to route)")
	}
	if set["shards"] {
		if o.shards < 0 {
			return usage("-shards must be >= 0 (0 = sequential), got %d", o.shards)
		}
		if *clustersFlag == "" {
			return usage("-shards needs -clusters (the sharded driver is federated)")
		}
		if !o.stream {
			return usage("-shards needs -stream (the sharded driver is the streaming engine)")
		}
	}
	if msg := traceConflict(o.traceFile, o.cpuProfile, o.memProfile); msg != "" {
		return usage("%s", msg)
	}
	if *clustersFlag != "" {
		var err error
		if o.clusters, err = platform.ParseClusters(*clustersFlag); err != nil {
			return usage("%v", err)
		}
		if o.routing == "" {
			o.routing = "round-robin"
		}
		if _, err := sched.NewRouter(o.routing); err != nil {
			return usage("%v", err)
		}
	}

	ob, err := startObserve(o, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "simsched:", err)
		return 1
	}
	o.tracer = ob.tracer()

	switch {
	case o.stream && len(o.clusters) > 0:
		err = runFederatedStreaming(o, stdout)
	case o.stream:
		err = runStreaming(o, stdout)
	case len(o.clusters) > 0:
		err = runFederated(o, stdout)
	default:
		err = runOnce(o, stdout)
	}
	if cerr := ob.close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(stderr, "simsched:", err)
		return 1
	}
	return 0
}

// runOnce is the classic single-machine preloading run.
func runOnce(o options, stdout io.Writer) error {
	w, script, err := loadWorkload(o)
	if err != nil {
		return err
	}
	cfg, err := buildConfig(o.triple, o.policy, o.predictor, o.lossName, o.corrector)
	if err != nil {
		return err
	}
	if o.disrupt != "none" {
		in, ok := scenario.IntensityByName(o.disrupt)
		if !ok {
			return fmt.Errorf("unknown disruption intensity %q", o.disrupt)
		}
		script = scenario.Merge(fmt.Sprintf("%s+%s", o.disrupt, o.status), script, scenario.Generate(w, in, o.disruptSeed))
	}
	cfg.Script = script
	cfg.Tracer = o.tracer

	res, err := sim.Run(w, cfg)
	if err != nil {
		return err
	}
	if errs := sim.ValidateResult(res); len(errs) != 0 {
		return fmt.Errorf("schedule invalid: %v", errs[0])
	}
	fmt.Fprintf(stdout, "workload      %s (%d jobs, %d procs)\n", w.Name, len(w.Jobs), w.MaxProcs)
	fmt.Fprintf(stdout, "triple        %s\n", res.Triple)
	if !script.Empty() {
		drains, restores, cancels := script.Counts()
		fmt.Fprintf(stdout, "scenario      %s (%d drains, %d restores, %d cancel events)\n", res.Scenario, drains, restores, cancels)
		fmt.Fprintf(stdout, "canceled      %d jobs, %d capacity changes\n", res.Canceled, len(res.CapacitySteps))
	}
	fmt.Fprintf(stdout, "AVEbsld       %.2f\n", metrics.AVEbsld(res))
	fmt.Fprintf(stdout, "max bsld      %.1f\n", metrics.MaxBsld(res))
	fmt.Fprintf(stdout, "mean wait     %.0f s\n", metrics.MeanWait(res))
	fmt.Fprintf(stdout, "utilization   %.3f\n", metrics.Utilization(res))
	fmt.Fprintf(stdout, "corrections   %d\n", res.Corrections)
	fmt.Fprintf(stdout, "prediction MAE %.0f s, mean E-Loss %.3g\n", metrics.MAE(res.Jobs), metrics.MeanELoss(res.Jobs))
	if len(w.Clients) > 0 {
		// Fold the finished jobs through the same per-client collectors
		// the streaming path uses as a sink, so both paths print the
		// identical split.
		pc := metrics.NewPerClient(w.Clients)
		for _, j := range res.Jobs {
			if j.Finished {
				pc.Observe(j)
			}
		}
		printClientSplit(stdout, pc)
	}
	return nil
}

// runFederated is the federated preloading run: one workload routed
// across -clusters, validated cluster by cluster.
func runFederated(o options, stdout io.Writer) error {
	w, script, err := loadWorkload(o)
	if err != nil {
		return err
	}
	fed, err := buildFederatedConfig(o)
	if err != nil {
		return err
	}
	if o.disrupt != "none" {
		script, err = federatedDisruption(o, w, script)
		if err != nil {
			return err
		}
	}
	fed.Script = script
	col := metrics.NewFederated(len(o.clusters))
	fed.Sink = col

	res, err := sim.RunFederated(w, fed)
	if err != nil {
		return err
	}
	if errs := sim.ValidateResult(res); len(errs) != 0 {
		return fmt.Errorf("schedule invalid: %v", errs[0])
	}
	fmt.Fprintf(stdout, "workload      %s (%d jobs, %d procs over %d clusters)\n", w.Name, len(w.Jobs), res.MaxProcs, len(res.Clusters))
	fmt.Fprintf(stdout, "routing       %s\n", res.Routing)
	fmt.Fprintf(stdout, "triple        %s\n", res.Triple)
	if script != nil && !script.Empty() {
		drains, restores, cancels := script.Counts()
		fmt.Fprintf(stdout, "scenario      %s (%d drains, %d restores, %d cancel events)\n", res.Scenario, drains, restores, cancels)
		fmt.Fprintf(stdout, "canceled      %d jobs\n", res.Canceled)
	}
	g := col.Global()
	fmt.Fprintf(stdout, "AVEbsld       %.2f\n", g.AVEbsld())
	fmt.Fprintf(stdout, "max bsld      %.1f\n", g.MaxBsld())
	fmt.Fprintf(stdout, "mean wait     %.0f s\n", g.MeanWait())
	fmt.Fprintf(stdout, "utilization   %.3f\n", g.Utilization(res.Makespan, res.MaxProcs))
	fmt.Fprintf(stdout, "corrections   %d\n", res.Corrections)
	printClusterSplit(stdout, res, col)
	return nil
}

// runFederatedStreaming is the federated bounded-memory run.
func runFederatedStreaming(o options, stdout io.Writer) error {
	fed, err := buildFederatedConfig(o)
	if err != nil {
		return err
	}
	fed.Shards = o.shards
	col := metrics.NewFederated(len(o.clusters))
	fed.Sink = col

	// A multi-client -wspec entry streams through the federation too;
	// the per-client split is single-machine output (the federated sink
	// splits by cluster instead), so the client names are not used here.
	name, _, src, _, err := buildStreamSource(o)
	if err != nil {
		return err
	}
	res, err := sim.RunFederatedStream(name, src, fed)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "workload      %s (streamed, %d jobs finished, %d procs over %d clusters)\n", name, res.Finished, res.MaxProcs, len(res.Clusters))
	fmt.Fprintf(stdout, "routing       %s\n", res.Routing)
	fmt.Fprintf(stdout, "triple        %s\n", res.Triple)
	g := col.Global()
	fmt.Fprintf(stdout, "AVEbsld       %.2f\n", g.AVEbsld())
	fmt.Fprintf(stdout, "max bsld      %.1f\n", g.MaxBsld())
	fmt.Fprintf(stdout, "mean wait     %.0f s\n", g.MeanWait())
	fmt.Fprintf(stdout, "utilization   %.3f\n", g.Utilization(res.Makespan, res.MaxProcs))
	fmt.Fprintf(stdout, "corrections   %d\n", res.Corrections)
	printClusterSplit(stdout, res, col)
	return nil
}

// buildFederatedConfig assembles the federated engine configuration.
// Session builds a fresh policy/predictor per cluster — sessions hold
// state, so sharing one across clusters would corrupt both.
func buildFederatedConfig(o options) (sim.FederatedConfig, error) {
	if _, err := buildConfig(o.triple, o.policy, o.predictor, o.lossName, o.corrector); err != nil {
		return sim.FederatedConfig{}, err
	}
	router, err := sched.NewRouter(o.routing)
	if err != nil {
		return sim.FederatedConfig{}, err
	}
	return sim.FederatedConfig{
		Clusters: o.clusters,
		Router:   router,
		Tracer:   o.tracer,
		Session: func() sim.Config {
			cfg, _ := buildConfig(o.triple, o.policy, o.predictor, o.lossName, o.corrector)
			return cfg
		},
	}, nil
}

// federatedDisruption generates one disruption script per cluster —
// drains scaled to that cluster's size, targeted at it by name, under a
// seed derived per cluster — and merges them with any replay script.
// Cancellations are drawn once (on the first cluster's script): a
// cancel targets a job wherever it was routed, so drawing per cluster
// would multiply the cancel rate by the cluster count.
func federatedDisruption(o options, w *trace.Workload, script *scenario.Script) (*scenario.Script, error) {
	in, ok := scenario.IntensityByName(o.disrupt)
	if !ok {
		return nil, fmt.Errorf("unknown disruption intensity %q", o.disrupt)
	}
	parts := []*scenario.Script{script}
	for ci, cl := range o.clusters {
		cin := in
		if ci > 0 {
			cin.CancelFrac = 0
		}
		cw := *w
		cw.MaxProcs = cl.Procs
		gen := scenario.Generate(&cw, cin, rng.DeriveSeed(o.disruptSeed, uint64(ci)))
		parts = append(parts, scenario.Retarget(gen, cl.Name))
	}
	return scenario.Merge(fmt.Sprintf("%s+%s/federated", o.disrupt, o.status), parts...), nil
}

// printClusterSplit renders the per-cluster lines of a federated run.
func printClusterSplit(stdout io.Writer, res *sim.Result, col *metrics.Federated) {
	for ci := range res.Clusters {
		cr := &res.Clusters[ci]
		cc := col.Clusters[ci]
		fmt.Fprintf(stdout, "cluster %-10s %4d procs x%-4g  routed %6d  finished %6d  AVEbsld %6.2f  util %.3f\n",
			cr.Name, cr.MaxProcs, cr.Speed, cr.Routed, cr.Finished, cc.AVEbsld(), cc.Utilization(cr.Makespan, cr.MaxProcs))
	}
}

// runStreaming is the -stream path: the workload is never materialized.
// SWF files are scanned from disk through the streaming status/clean
// filters; presets use the bounded-memory generator (same statistical
// structure as the preloading generator, arrival draws differ). The
// -disrupt and -status replay modes need the whole trace to derive
// their scripts and are rejected at flag validation.
func runStreaming(o options, stdout io.Writer) error {
	cfg, err := buildConfig(o.triple, o.policy, o.predictor, o.lossName, o.corrector)
	if err != nil {
		return err
	}
	name, mp, src, clients, err := buildStreamSource(o)
	if err != nil {
		return err
	}
	col := metrics.NewCollector()
	cfg.Sink = col
	var pc *metrics.PerClient
	if len(clients) > 0 {
		pc = metrics.NewPerClient(clients)
		cfg.Sink = pc
		col = pc.Overall()
	}
	cfg.Tracer = o.tracer

	res, err := sim.RunStream(name, mp, src, cfg)
	if err != nil {
		return err
	}
	report.StreamSummary(stdout, report.CollectStreamRun(name, res.MaxProcs, res.Triple, res.Makespan, res.Corrections, col))
	if pc != nil {
		printClientSplit(stdout, pc)
	}
	return nil
}

// printClientSplit renders the per-client lines of a multi-client run,
// mirroring printClusterSplit's shape for federated runs. The format
// lives in report.ClientSplit so cmd/schedd's summary matches.
func printClientSplit(stdout io.Writer, pc *metrics.PerClient) {
	report.ClientSplit(stdout, pc)
}

// buildStreamSource assembles the lazy job pipeline and resolves the
// machine size (peeking one record so the SWF header is available).
// clients is non-nil only for a multi-client -wspec entry: the client
// names, in client-index order, for the per-client metrics split.
func buildStreamSource(o options) (name string, mp int64, src workload.Source, clients []string, err error) {
	if o.wspec != "" {
		e, err := resolveWSpec(o.wspec)
		if err != nil {
			return "", 0, nil, nil, err
		}
		if len(e.Clients) > 0 {
			m, err := workload.NewMultiSource(e.Config, e.Clients)
			if err != nil {
				return "", 0, nil, nil, err
			}
			return e.Config.Name, e.Config.MaxProcs, m, m.ClientNames(), nil
		}
		g, err := workload.NewGenSource(e.Config)
		if err != nil {
			return "", 0, nil, nil, err
		}
		return e.Config.Name, e.Config.MaxProcs, g, nil, nil
	}
	if o.swfPath == "" {
		cfg, err := workload.Scaled(o.preset, o.jobs)
		if err != nil {
			return "", 0, nil, nil, err
		}
		g, err := workload.NewGenSource(cfg)
		if err != nil {
			return "", 0, nil, nil, err
		}
		return cfg.Name, cfg.MaxProcs, g, nil, nil
	}

	mode, err := swf.ParseStatusMode(o.status)
	if err != nil {
		return "", 0, nil, nil, err
	}
	f, err := os.Open(o.swfPath)
	if err != nil {
		return "", 0, nil, nil, err
	}
	// The file stays open for the whole run; the process exit closes it.
	sc := swf.NewScanner(f)
	first, err := sc.Next()
	if err == io.EOF {
		return "", 0, nil, nil, fmt.Errorf("%s: no jobs", o.swfPath)
	}
	if err != nil {
		return "", 0, nil, nil, err
	}
	mp = o.maxProcs
	if mp <= 0 {
		mp = sc.Header().Procs()
	}
	if mp <= 0 {
		return "", 0, nil, nil, fmt.Errorf("%s: machine size unknown (no MaxProcs/MaxNodes header; pass -maxprocs)", o.swfPath)
	}
	src = workload.Prepend([]swf.Job{first}, workload.NewScanSource(sc))
	src, err = workload.NewStatusSource(src, mode)
	if err != nil {
		return "", 0, nil, nil, err
	}
	return o.swfPath, mp, workload.NewCleanSource(src, mp), nil, nil
}

// loadWorkload builds the scheduling problem. For SWF files the status
// mode is applied before cleaning; replay mode additionally derives the
// cancellation script from the log's own status fields. A -wspec entry
// is generated via the spec resolver, so clients: blocks work here too.
func loadWorkload(o options) (*trace.Workload, *scenario.Script, error) {
	if o.wspec != "" {
		e, err := resolveWSpec(o.wspec)
		if err != nil {
			return nil, nil, err
		}
		var w *trace.Workload
		if len(e.Clients) > 0 {
			w, err = workload.GenerateMulti(e.Config, e.Clients)
		} else {
			w, err = workload.Generate(e.Config)
		}
		return w, nil, err
	}
	if o.swfPath != "" {
		mode, err := swf.ParseStatusMode(o.status)
		if err != nil {
			return nil, nil, err
		}
		f, err := os.Open(o.swfPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		raw, err := swf.Parse(f)
		if err != nil {
			return nil, nil, err
		}
		w, err := trace.FromSWF(o.swfPath, swf.ApplyStatus(raw, mode), o.maxProcs)
		if err != nil {
			return nil, nil, err
		}
		var script *scenario.Script
		if mode == swf.StatusReplay {
			script = scenario.CancellationsFromSWF(o.swfPath+"/cancellations", raw)
		}
		return w, script, nil
	}
	cfg, err := workload.Scaled(o.preset, o.jobs)
	if err != nil {
		return nil, nil, err
	}
	w, err := workload.Generate(cfg)
	return w, nil, err
}

// resolveWSpec loads a spec file and demands exactly one workload entry
// — simsched runs one simulation, so a multi-workload spec is a grid
// job for cmd/campaign instead.
func resolveWSpec(path string) (spec.ResolvedWorkload, error) {
	s, err := spec.Load(path)
	if err != nil {
		return spec.ResolvedWorkload{}, err
	}
	entries, err := s.ResolvedWorkloads()
	if err != nil {
		return spec.ResolvedWorkload{}, err
	}
	if len(entries) != 1 {
		return spec.ResolvedWorkload{}, fmt.Errorf("%s resolves to %d workloads; -wspec needs exactly one (grids belong to cmd/campaign)", path, len(entries))
	}
	return entries[0], nil
}

func buildConfig(triple, policy, predictor, lossName, corrector string) (sim.Config, error) {
	if triple != "" {
		switch strings.ToLower(triple) {
		case "easy":
			return core.EASY().Config(), nil
		case "easy++":
			return core.EASYPlusPlus().Config(), nil
		case "best":
			return core.PaperBest().Config(), nil
		case "clairvoyant":
			return core.ClairvoyantEASY().Config(), nil
		case "clairvoyant-sjbf":
			return core.ClairvoyantSJBF().Config(), nil
		default:
			return sim.Config{}, fmt.Errorf("unknown triple %q", triple)
		}
	}
	var t core.Triple
	switch strings.ToLower(predictor) {
	case "clairvoyant":
		t.Predictor = core.PredClairvoyant
	case "requested":
		t.Predictor = core.PredRequested
	case "ave2":
		t.Predictor = core.PredAve2
	case "ml":
		t.Predictor = core.PredLearning
		loss, err := findLoss(lossName)
		if err != nil {
			return sim.Config{}, err
		}
		t.Loss = loss
	default:
		return sim.Config{}, fmt.Errorf("unknown predictor %q", predictor)
	}
	switch strings.ToLower(corrector) {
	case "requested":
		t.Corrector = correct.RequestedTime{}
	case "incremental":
		t.Corrector = correct.Incremental{}
	case "doubling":
		t.Corrector = correct.RecursiveDoubling{}
	default:
		return sim.Config{}, fmt.Errorf("unknown corrector %q", corrector)
	}
	cfg := sim.Config{Predictor: t.NewPredictor(), Corrector: t.Corrector}
	switch strings.ToLower(policy) {
	case "fcfs":
		cfg.Policy = sched.NewFCFS()
	case "easy":
		cfg.Policy = sched.NewEASY(sched.FCFSOrder)
	case "easy-sjbf":
		cfg.Policy = sched.NewEASY(sched.SJBFOrder)
	case "conservative":
		cfg.Policy = sched.NewConservative()
	default:
		return sim.Config{}, fmt.Errorf("unknown policy %q", policy)
	}
	return cfg, nil
}

func findLoss(name string) (ml.Loss, error) {
	for _, l := range ml.AllLosses() {
		if l.Name() == name {
			return l, nil
		}
	}
	return ml.Loss{}, fmt.Errorf("unknown loss %q (see ml.AllLosses)", name)
}
