// Command calibrate prints reference-triple AVEbsld per preset at
// benchmark scale, used while calibrating the synthetic generators.
//
// Usage:
//
//	calibrate                  # all presets, 3000 jobs, 3 seed offsets
//	calibrate -jobs 500 -seeds 1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	jobs := flag.Int("jobs", 3000, "jobs per preset workload")
	seeds := flag.Int("seeds", 3, "seed offsets to sweep per preset")
	flag.Parse()

	if err := validateFlags(*jobs, *seeds); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*jobs, *seeds, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

// validateFlags rejects the silent-typo values (mirroring cmd/campaign's
// negative-flag rejection).
func validateFlags(jobs, seeds int) error {
	if jobs <= 0 {
		return fmt.Errorf("-jobs must be > 0, got %d", jobs)
	}
	if seeds <= 0 {
		return fmt.Errorf("-seeds must be > 0, got %d", seeds)
	}
	return nil
}

// run sweeps every preset across the seed offsets and prints the
// EASY-vs-clairvoyant gain line per cell.
func run(jobs, seeds int, w io.Writer) error {
	for _, name := range workload.PresetNames() {
		for ds := uint64(0); ds < uint64(seeds); ds++ {
			cfg, err := workload.Scaled(name, jobs)
			if err != nil {
				return err
			}
			cfg.Seed += ds
			wl, err := workload.Generate(cfg)
			if err != nil {
				return err
			}
			score := func(t core.Triple) (float64, error) {
				res, err := sim.Run(wl, t.Config())
				if err != nil {
					return 0, err
				}
				return metrics.AVEbsld(res), nil
			}
			e, err := score(core.EASY())
			if err != nil {
				return err
			}
			c, err := score(core.ClairvoyantEASY())
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-12s seed+%d EASY=%6.1f ClairEASY=%6.1f gain=%5.1f%%\n", name, ds, e, c, 100*(e-c)/e)
		}
	}
	return nil
}
