// Command calibrate prints reference-triple AVEbsld per preset at
// benchmark scale, used while calibrating the synthetic generators.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	for _, name := range workload.PresetNames() {
		for _, ds := range []uint64{0, 1, 2} {
			cfg, _ := workload.Scaled(name, 3000)
			cfg.Seed += ds
			w, err := workload.Generate(cfg)
			if err != nil {
				panic(err)
			}
			run := func(t core.Triple) float64 {
				res, err := sim.Run(w, t.Config())
				if err != nil {
					panic(err)
				}
				return metrics.AVEbsld(res)
			}
			e, c := run(core.EASY()), run(core.ClairvoyantEASY())
			fmt.Printf("%-12s seed+%d EASY=%6.1f ClairEASY=%6.1f gain=%5.1f%%\n", name, ds, e, c, 100*(e-c)/e)
		}
	}
}
