package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(3000, 3); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	for _, c := range []struct{ jobs, seeds int }{
		{0, 3}, {-1, 3}, {3000, 0}, {3000, -2},
	} {
		if err := validateFlags(c.jobs, c.seeds); err == nil {
			t.Errorf("validateFlags(%d, %d) accepted", c.jobs, c.seeds)
		}
	}
}

func TestRunPrintsOneLinePerCell(t *testing.T) {
	var sb strings.Builder
	if err := run(80, 1, &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want one per preset (6):\n%s", len(lines), sb.String())
	}
	for _, l := range lines {
		if !strings.Contains(l, "EASY=") || !strings.Contains(l, "gain=") {
			t.Fatalf("malformed line %q", l)
		}
	}
}
