package main

import (
	"strings"
	"testing"
)

// TestTraceConflict pins the -trace destination validation main feeds
// to usageError (exit 2): stdout is owned by the tables, and the
// profile files cannot share the trace's path. The check lives in a
// plain function because usageError os.Exits.
func TestTraceConflict(t *testing.T) {
	cases := []struct {
		name                  string
		trace, cpu, mem, want string
	}{
		{"off", "", "cpu.pprof", "mem.pprof", ""},
		{"plain file", "trace.jsonl", "", "", ""},
		{"distinct files", "trace.jsonl", "cpu.pprof", "mem.pprof", ""},
		{"dash stdout", "-", "", "", "cannot write to stdout"},
		{"dev stdout", "/dev/stdout", "", "", "cannot write to stdout"},
		{"cpu collision", "out.x", "out.x", "", "-trace and -cpuprofile both write out.x"},
		{"mem collision", "out.x", "", "out.x", "-trace and -memprofile both write out.x"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := traceConflict(tc.trace, tc.cpu, tc.mem)
			if tc.want == "" && got != "" {
				t.Fatalf("unexpected conflict: %q", got)
			}
			if tc.want != "" && !strings.Contains(got, tc.want) {
				t.Fatalf("conflict %q does not mention %q", got, tc.want)
			}
		})
	}
}
