package main

// This file wires the observability flags: -trace (the structured
// decision-trace JSONL described in the README's Observability section
// and summarized by cmd/tracestat), -cpuprofile/-memprofile (pprof
// files), and -pprof (a live net/http/pprof endpoint while the grid
// runs). Every exit path — including fatal()'s os.Exit, which skips
// defers — must stop the CPU profile, dump the heap and flush the
// trace, so cleanup registers in an explicit atExit stack.

import (
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/obs"
)

// traceConflict reports a usage conflict on the -trace destination:
// the tables own stdout, so a trace aimed there would interleave JSONL
// with the report; and the profile writers cannot share the trace's
// file. Empty means no conflict.
func traceConflict(trace, cpuProfile, memProfile string) string {
	if trace == "" {
		return ""
	}
	if trace == "-" || trace == "/dev/stdout" {
		return "-trace cannot write to stdout (the tables own it); give it a file path"
	}
	if trace == cpuProfile {
		return "-trace and -cpuprofile both write " + trace
	}
	if trace == memProfile {
		return "-trace and -memprofile both write " + trace
	}
	return ""
}

var atExitFns []func()

// atExit schedules fn to run on every exit path, LIFO like defer.
func atExit(fn func()) { atExitFns = append(atExitFns, fn) }

// runAtExit drains the atExit stack. Called by main on the normal
// return path (via defer) and by fatal/gridFailed/usageError before
// os.Exit.
func runAtExit() {
	for i := len(atExitFns) - 1; i >= 0; i-- {
		atExitFns[i]()
	}
	atExitFns = nil
}

// startProfiling starts the requested profilers: the CPU profile runs
// until exit, the heap profile is written at exit (after a GC, so it
// reflects live memory, not garbage), and the pprof endpoint serves in
// the background for the lifetime of the process.
func startProfiling(cpuProfile, memProfile, pprofAddr string) {
	if pprofAddr != "" {
		go func() {
			// The blank net/http/pprof import registers its handlers on
			// the default mux.
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "campaign: pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "campaign: pprof listening on http://%s/debug/pprof/\n", pprofAddr)
	}
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		atExit(func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "campaign: cpuprofile:", err)
			}
		})
	}
	if memProfile != "" {
		atExit(func() {
			f, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "campaign: memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "campaign: memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "campaign: memprofile:", err)
			}
		})
	}
}

// openTrace opens the flight-recorder JSONL (nil when path is empty)
// and registers its flush. A trace that hit a write error mid-grid
// would be silently truncated, so the flush surfaces the sticky error
// and fails the run's exit status.
func openTrace(path string) obs.Tracer {
	if path == "" {
		return nil
	}
	t, err := obs.OpenJSONL(path)
	if err != nil {
		fatal(err)
	}
	atExit(func() {
		if err := t.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "campaign: trace:", err)
			exitCode = 1
		}
	})
	fmt.Fprintf(os.Stderr, "campaign: tracing decisions to %s\n", path)
	return t
}
