// Command campaign runs the paper's full experiment campaign — every
// heuristic triple over the six Table-4 preset workloads — and prints the
// requested tables and figure series. With -robustness it instead runs
// the disruption sweep: a compact triple set under randomized node
// drains, maintenance windows and job cancellations at every intensity
// level, rendered as the robustness table.
//
// Usage:
//
//	campaign -jobs 3000                  # everything
//	campaign -jobs 3000 -table 1        # just Table 1
//	campaign -jobs 3000 -figure 4       # just Figure 4 (Curie ECDFs)
//	campaign -jobs 3000 -robustness     # disruption sweep
//
// With -clusters the campaign runs on a federated multi-cluster
// platform: each workload is routed across the listed clusters by every
// -routing policy, and the report gains per-cluster columns (AVEbsld
// and finished jobs per cluster) next to the global metrics:
//
//	campaign -clusters 100,64x1.5,slow=32x0.5 -routing least-loaded,queue-depth
//	campaign -spec specs/federated.yaml          # the same, declaratively
//
// Experiments can also be described declaratively: -spec runs the
// experiment in a versioned spec file (workloads, triples, disruption
// scenarios, grid dimensions, output settings — see specs/ for the
// canonical paper grid, the robustness sweep and the nightly CI
// campaign, and docs/WORKLOADS.md for the workload and clients
// schema). Flags given alongside -spec
// override the spec's fields; -validate parses and resolves a spec,
// prints its shape, and exits without simulating:
//
//	campaign -spec specs/paper.yaml             # the paper grid
//	campaign -spec specs/paper.yaml -jobs 500   # ...at reduced scale
//	campaign -spec specs/nightly.yaml -validate # dry-run check
//
// Long campaigns are durable and cancellable: -out streams every
// completed cell to an append-only JSONL result journal, Ctrl-C stops
// the grid gracefully (in-flight simulations finish and are journaled),
// and -resume reloads the journal on restart so only the missing cells
// run — the final tables are identical to an uninterrupted run:
//
//	campaign -jobs 0 -out grid.jsonl            # interrupted with ^C...
//	campaign -jobs 0 -out grid.jsonl -resume    # ...picks up where it left off
//
// Big grids on small machines: -stream runs every cell on the
// bounded-memory streaming engine (identical decisions and tables,
// proven by the differential tests in internal/sim) so in-flight cells
// hold only their live-job window instead of trace-sized runtime state
// and retained schedules; the generated input traces themselves stay in
// memory, and the Table 8 / Figures 4-5 prediction analysis is a
// preloading path regardless. -memlimit MiB puts a soft runtime cap on
// the whole process:
//
//	campaign -jobs 0 -stream -memlimit 4096 -table 6   # full Table-4 sizes, capped
//
// Table/figure numbers follow the paper: tables 1, 6, 7, 8 and figures
// 3, 4, 5. Progress and an ETA are reported on stderr while the grid
// runs; -perf additionally prints the per-workload performance counters
// (events, Pick calls, sim wall time) every cell records.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/debug"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/trace"
	"repro/internal/workload"
)

// exitCode is the process's eventual exit status: cleanup hooks (the
// trace flush) can fail the run after the tables already printed.
var exitCode int

func main() {
	run()
	runAtExit()
	os.Exit(exitCode)
}

func run() {
	jobs := flag.Int("jobs", 3000, "jobs per preset workload (0 = full Table-4 sizes; slow)")
	table := flag.Int("table", 0, "print only this table (1, 6, 7 or 8; 0 = all)")
	figure := flag.Int("figure", 0, "print only this figure (3, 4 or 5; 0 = all)")
	par := flag.Int("p", 0, "parallel simulations (0 = GOMAXPROCS)")
	robustness := flag.Bool("robustness", false, "run the disruption sweep instead of the paper tables")
	seed := flag.Uint64("seed", 1, "base seed: derives per-cell seeds, and the -robustness disruption scripts")
	out := flag.String("out", "", "append every completed cell to this JSONL result journal")
	resume := flag.Bool("resume", false, "skip cells already recorded in the -out journal")
	perf := flag.Bool("perf", false, "print per-workload performance counters to stderr")
	stream := flag.Bool("stream", false, "run every cell on the bounded-memory streaming engine (same tables, O(live jobs) per cell)")
	shards := flag.Int("shards", 0, "with -clusters and -stream: run each cell on the parallel sharded federated driver with this many per-cluster event-loop goroutines (0 = sequential; results are byte-identical for every shard count)")
	memLimit := flag.Int("memlimit", 0, "soft memory cap in MiB for the whole process (0 = none); pairs with -stream for big grids on small machines")
	specPath := flag.String("spec", "", "run the experiment described by this spec file (see specs/ and docs/WORKLOADS.md); other flags override its fields")
	validate := flag.Bool("validate", false, "with -spec: parse and resolve the spec, print its shape, and exit without simulating")
	clustersFlag := flag.String("clusters", "", "federated platform: comma-separated NAME=PROCS[xSPEED] entries (e.g. \"100,64x1.5,slow=32x0.5\"); the campaign grids over -routing policies and renders the federated table")
	routingFlag := flag.String("routing", "", "comma-separated routing policies in front of -clusters: "+sched.RouterNames+" (default round-robin)")
	traceFile := flag.String("trace", "", "append the structured decision trace (JSONL; summarize with tracestat) to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while the grid runs")
	flag.Parse()

	// Negative values used to be silently mapped to the defaults; they
	// are almost certainly typos, so reject them loudly.
	if *jobs < 0 {
		usageError("-jobs must be >= 0 (0 = full Table-4 sizes), got %d", *jobs)
	}
	if *par < 0 {
		usageError("-p must be >= 0 (0 = GOMAXPROCS), got %d", *par)
	}
	if *resume && *out == "" && *specPath == "" {
		usageError("-resume requires -out (the journal to resume from)")
	}
	if *validate && *specPath == "" {
		usageError("-validate requires -spec")
	}
	if *memLimit < 0 {
		usageError("-memlimit must be >= 0 MiB, got %d", *memLimit)
	}
	if msg := traceConflict(*traceFile, *cpuProfile, *memProfile); msg != "" {
		usageError("%s", msg)
	}
	if *routingFlag != "" && *clustersFlag == "" && *specPath == "" {
		usageError("-routing needs -clusters (a single-machine grid has nothing to route)")
	}
	if *shards != 0 {
		if *shards < 0 {
			usageError("-shards must be >= 0 (0 = sequential), got %d", *shards)
		}
		if *clustersFlag == "" && *specPath == "" {
			usageError("-shards needs -clusters (the sharded driver is federated)")
		}
		if !*stream {
			usageError("-shards needs -stream (the sharded driver is the streaming engine)")
		}
		if *perf {
			usageError("-shards conflicts with -perf (the sharded driver collects no stage histograms)")
		}
	}
	var clusters []platform.Cluster
	var routings []string
	if *clustersFlag != "" {
		var err error
		if clusters, err = platform.ParseClusters(*clustersFlag); err != nil {
			usageError("%v", err)
		}
	}
	if *routingFlag != "" {
		routings = parseRoutings(*routingFlag)
	}
	if *clustersFlag != "" {
		if *robustness {
			usageError("-clusters conflicts with -robustness (the disruption sweep is single-machine)")
		}
		if *table != 0 || *figure != 0 {
			usageError("-table/-figure do not apply to a federated campaign (it renders the federated table)")
		}
	}
	if *memLimit > 0 {
		// A soft cap: the runtime GCs harder as the heap approaches it
		// instead of overshooting into the OOM killer. The streaming
		// engine is what makes a tight cap feasible — preloaded grids
		// hold O(trace) per in-flight cell.
		debug.SetMemoryLimit(int64(*memLimit) << 20)
	}
	startProfiling(*cpuProfile, *memProfile, *pprofAddr)

	// Ctrl-C (or SIGTERM) cancels the grid gracefully: in-flight cells
	// finish and are journaled, then the run reports how to resume.
	// After the first signal the handler is unregistered, so a second
	// Ctrl-C force-quits via the default disposition instead of being
	// swallowed while in-flight cells drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	if *specPath != "" {
		// Flags the user actually passed become the outermost override
		// layer: flags > spec > include.
		var ov spec.Overrides
		tablesSet, figuresSet := false, false
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "jobs":
				ov.Jobs = jobs
			case "seed":
				ov.Seed = seed
			case "p":
				ov.Parallelism = par
			case "out":
				ov.Journal = out
			case "resume":
				ov.Resume = resume
			case "perf":
				ov.Perf = perf
			case "stream":
				ov.Stream = stream
			case "shards":
				ov.Shards = shards
			case "table":
				if *table != 0 {
					ov.Tables = []int{*table}
				}
				tablesSet = true
			case "figure":
				if *figure != 0 {
					ov.Figures = []int{*figure}
				}
				figuresSet = true
			case "clusters":
				ov.Clusters = clusters
			case "routing":
				ov.Routings = routings
			case "trace":
				ov.Trace = traceFile
			case "robustness":
				usageError("-robustness conflicts with -spec (the spec's kind decides the grid)")
			}
		})
		runSpec(ctx, *specPath, *validate, ov, tablesSet, figuresSet)
		return
	}

	// -perf implies stage profiling: the summary it prints is where the
	// per-stage latency histograms render.
	tracer := openTrace(*traceFile)

	if *robustness {
		r := &campaign.Robustness{Seed: *seed, Parallelism: *par, Stream: *stream,
			Tracer: tracer, Profile: *perf}
		runRobustnessGrids(ctx, []*campaign.Robustness{r}, *jobs, nil, *out, *resume, *perf)
		return
	}

	if len(clusters) > 0 {
		if len(routings) == 0 {
			routings = []string{"round-robin"}
		}
		feds := make([]campaign.Federation, len(routings))
		for i, r := range routings {
			feds[i] = campaign.Federation{Clusters: clusters, Routing: r}
		}
		fc := &campaign.FederatedCampaign{Federations: feds, Seed: *seed, Parallelism: *par, Stream: *stream,
			Shards: *shards, Tracer: tracer, Profile: *perf}
		runFederatedGrid(ctx, fc, nil, *jobs, *out, *resume, *perf)
		return
	}

	var tables, figures []int
	if *table != 0 {
		tables = []int{*table}
	}
	if *figure != 0 {
		figures = []int{*figure}
	}
	if *table == 0 && *figure == 0 {
		tables, figures = allTables, allFigures
	}
	c := &campaign.Campaign{Seed: *seed, Parallelism: *par, Stream: *stream,
		Tracer: tracer, Profile: *perf}
	runCampaignGrid(ctx, c, nil, *jobs, tables, figures, *out, *resume, *perf)
}

var (
	allTables  = []int{1, 6, 7, 8}
	allFigures = []int{3, 4, 5}
)

// runSpec loads a spec, applies the flag overrides, and dispatches to
// the kind's grid runner — or just prints the resolved shape under
// -validate.
func runSpec(ctx context.Context, path string, validateOnly bool, ov spec.Overrides, tablesSet, figuresSet bool) {
	s, err := spec.Load(path)
	if err != nil {
		fatal(err)
	}
	s.Apply(ov)
	if s.Output.Resume && s.Output.Journal == "" {
		usageError("resume needs a journal: set output.journal in the spec or pass -out")
	}
	if len(s.Routings) > 0 && !s.Federated() {
		usageError("routing needs clusters: set clusters in the spec or pass -clusters")
	}
	// -table/-figure are selections, not additions: naming one
	// suppresses the spec's other axis, exactly as in flag-only mode.
	if tablesSet && !figuresSet {
		s.Output.Figures = nil
	}
	if figuresSet && !tablesSet {
		s.Output.Tables = nil
	}

	if validateOnly {
		printSpecShape(s)
		return
	}

	ws, err := s.GenerateWorkloads()
	if err != nil {
		fatal(err)
	}
	o := s.Output
	tracer := openTrace(s.Trace.File)
	profile := o.Perf || s.Trace.Profile
	switch s.Kind {
	case "robustness":
		grids := make([]*campaign.Robustness, s.Repeats)
		for r := range grids {
			grids[r] = s.Robustness(ws, r)
			grids[r].Tracer = tracer
			grids[r].Profile = profile
		}
		runRobustnessGrids(ctx, grids, -1, ws, o.Journal, o.Resume, o.Perf)
	default:
		if s.Federated() {
			if len(o.Tables) > 0 || len(o.Figures) > 0 {
				usageError("tables/figures do not apply to a federated campaign (it renders the federated table)")
			}
			fc := s.FederatedCampaign(ws)
			fc.Tracer = tracer
			fc.Profile = profile
			runFederatedGrid(ctx, fc, ws, s.Jobs, o.Journal, o.Resume, o.Perf)
			return
		}
		tables, figures := o.Tables, o.Figures
		if len(tables) == 0 && len(figures) == 0 {
			tables, figures = allTables, allFigures
		}
		c := s.Campaign(ws)
		c.Tracer = tracer
		c.Profile = profile
		runCampaignGrid(ctx, c, ws, s.Jobs, tables, figures, o.Journal, o.Resume, o.Perf)
	}
}

// printSpecShape is the -validate dry run: the spec resolved and
// summarized, with nothing simulated.
func printSpecShape(s *spec.Spec) {
	cfgs, err := s.WorkloadConfigs()
	if err != nil {
		fatal(err)
	}
	names := make([]string, len(cfgs))
	for i, cfg := range cfgs {
		names[i] = fmt.Sprintf("%s(%d jobs)", cfg.Name, cfg.Jobs)
	}
	fmt.Printf("spec %s: OK\n", s.Path)
	fmt.Printf("  kind        %s\n", s.Kind)
	fmt.Printf("  seed        %d\n", s.Seed)
	if s.Stream {
		fmt.Printf("  stream      true\n")
	}
	if s.Shards > 0 {
		fmt.Printf("  shards      %d\n", s.Shards)
	}
	fmt.Printf("  workloads   %d: %s\n", len(cfgs), strings.Join(names, ", "))
	fmt.Printf("  triples     %d\n", s.TripleCount())
	if s.Kind == "robustness" {
		fmt.Printf("  scenarios   %d\n", s.ScenarioCount())
		fmt.Printf("  repeats     %d\n", s.Repeats)
	}
	nfed := 1
	if s.Federated() {
		feds := s.Federations()
		nfed = len(feds)
		entries := make([]string, len(s.Clusters))
		for i, c := range s.Clusters {
			entries[i] = c.String()
		}
		policies := make([]string, len(feds))
		for i, f := range feds {
			policies[i] = f.Routing
		}
		fmt.Printf("  clusters    %d (%d procs): %s\n", len(s.Clusters), platform.ClustersTotal(s.Clusters), strings.Join(entries, ", "))
		fmt.Printf("  routing     %s\n", strings.Join(policies, ", "))
	}
	fmt.Printf("  grid        %d cells\n", len(cfgs)*nfed*s.TripleCount()*s.ScenarioCount()*s.Repeats)
	if s.Output.Journal != "" {
		mode := ""
		if s.Output.Resume {
			mode = " (resume)"
		}
		fmt.Printf("  journal     %s%s\n", s.Output.Journal, mode)
	}
	if s.Trace.File != "" {
		mode := ""
		if s.Trace.Profile {
			mode = " (profiled)"
		}
		fmt.Printf("  trace       %s%s\n", s.Trace.File, mode)
	}
}

// runCampaignGrid runs the paper-table campaign (generating the default
// workloads when ws is nil) and renders the selected tables and
// figures. jobs is the preset scaling, used for default workloads and
// for the Curie prediction series of Table 8 / Figures 4-5.
func runCampaignGrid(ctx context.Context, c *campaign.Campaign, ws []*trace.Workload, jobs int, tables, figures []int, out string, resume, perf bool) {
	needGrid := hasAny(tables, 1, 6, 7) || hasAny(figures, 3)
	var results []campaign.RunResult
	if needGrid {
		if ws == nil {
			var err error
			ws, err = campaign.DefaultWorkloads(jobs)
			if err != nil {
				fatal(err)
			}
		}
		c.Workloads = ws
		c.Progress = progressReporter("campaign")
		journal, done := openJournal(out, resume)
		c.Journal = journal
		c.Resume = done
		ntr := len(c.Triples)
		if ntr == 0 {
			ntr = len(core.CampaignTriples())
		}
		fmt.Fprintf(os.Stderr, "campaign: running %d simulations (%d workloads x %d triples)...\n", len(ws)*ntr, len(ws), ntr)
		var err error
		results, err = c.Run(ctx)
		closeJournal(journal)
		if err != nil {
			gridFailed(err, len(results), out)
		}
		if perf {
			fmt.Fprintln(os.Stderr, report.PerfSummary(results))
		}
	}

	if hasAny(tables, 1) {
		fmt.Println(report.Table1(results))
	}
	if hasAny(tables, 6) {
		fmt.Println(report.Table6(results))
	}
	if hasAny(tables, 7) {
		cv, err := campaign.LeaveOneOut(results)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.Table7(cv, results))
	}
	if hasAny(figures, 3) {
		fmt.Println(report.Figure3(results, "SDSC-BLUE", "Metacentrum"))
	}
	// Multi-client workloads (a spec with clients: blocks) get their
	// per-client decomposition next to the global tables; single-
	// population grids render nothing extra.
	if t := report.ClientTable(results); t != "" {
		fmt.Println(t)
	}

	if hasAny(tables, 8) || hasAny(figures, 4, 5) {
		cfg, err := workload.Scaled("Curie", jobs)
		if err != nil {
			fatal(err)
		}
		w, err := workload.Generate(cfg)
		if err != nil {
			fatal(err)
		}
		series, err := report.AnalyzePredictions(w)
		if err != nil {
			fatal(err)
		}
		if hasAny(tables, 8) {
			fmt.Println(report.Table8(series))
		}
		if hasAny(figures, 4) {
			fmt.Println(report.Figure4(series))
		}
		if hasAny(figures, 5) {
			fmt.Println(report.Figure5(series))
		}
	}
}

// parseRoutings splits and validates the -routing flag.
func parseRoutings(s string) []string {
	var out []string
	seen := map[string]bool{}
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if _, err := sched.NewRouter(name); err != nil {
			usageError("%v", err)
		}
		if seen[name] {
			usageError("-routing lists %q twice", name)
		}
		seen[name] = true
		out = append(out, name)
	}
	return out
}

// runFederatedGrid runs the federated campaign — workloads x routing
// policies x triples on a multi-cluster platform — and renders the
// federated table with its per-cluster columns.
func runFederatedGrid(ctx context.Context, fc *campaign.FederatedCampaign, ws []*trace.Workload, jobs int, out string, resume, perf bool) {
	if ws == nil {
		var err error
		ws, err = campaign.DefaultWorkloads(jobs)
		if err != nil {
			fatal(err)
		}
	}
	fc.Workloads = ws
	fc.Progress = progressReporter("federated")
	journal, done := openJournal(out, resume)
	fc.Journal = journal
	fc.Resume = done
	ntr := len(fc.Triples)
	if ntr == 0 {
		ntr = len(core.CampaignTriples())
	}
	fmt.Fprintf(os.Stderr, "campaign: running %d federated simulations (%d workloads x %d federations x %d triples)...\n",
		len(ws)*len(fc.Federations)*ntr, len(ws), len(fc.Federations), ntr)
	results, err := fc.Run(ctx)
	closeJournal(journal)
	if err != nil {
		gridFailed(err, len(results), out)
	}
	if perf {
		fmt.Fprintln(os.Stderr, report.FederatedPerfSummary(results))
	}
	fmt.Println(report.FederatedTable(results))
}

// runRobustnessGrids runs one disruption sweep per repeat (sharing the
// journal), cell-averages them, and renders the robustness table. When
// ws is nil the default preset workloads are generated at the given
// jobs scaling.
func runRobustnessGrids(ctx context.Context, grids []*campaign.Robustness, jobs int, ws []*trace.Workload, out string, resume, perf bool) {
	if ws == nil {
		var err error
		ws, err = campaign.DefaultWorkloads(jobs)
		if err != nil {
			fatal(err)
		}
	}
	journal, done := openJournal(out, resume)
	triples := len(grids[0].Triples)
	if triples == 0 {
		triples = len(campaign.DefaultRobustnessTriples())
	}
	cols := len(grids[0].Scenarios)
	if cols == 0 {
		cols = len(scenario.Intensities)
	}
	total := len(ws) * triples * cols * len(grids)
	fmt.Fprintf(os.Stderr, "campaign: running %d disrupted simulations (%d workloads x %d triples x %d scenarios x %d repeats)...\n",
		total, len(ws), triples, cols, len(grids))

	var runs [][]campaign.RobustnessResult
	var flat []campaign.RunResult
	for i, r := range grids {
		r.Workloads = ws
		r.Journal = journal
		r.Resume = done
		r.Progress = progressReporter(fmt.Sprintf("robustness %d/%d", i+1, len(grids)))
		results, err := r.Run(ctx)
		if err != nil {
			closeJournal(journal)
			gridFailed(err, len(results), out)
		}
		runs = append(runs, results)
		for _, res := range results {
			flat = append(flat, res.RunResult)
		}
	}
	closeJournal(journal)
	if perf {
		fmt.Fprintln(os.Stderr, report.PerfSummary(flat))
	}
	merged, err := campaign.AverageRobustness(runs)
	if err != nil {
		fatal(err)
	}
	fmt.Println(report.RobustnessTable(merged))
}

// hasAny reports whether the selection contains any of the wanted ids.
func hasAny(selected []int, wanted ...int) bool {
	for _, s := range selected {
		for _, w := range wanted {
			if s == w {
				return true
			}
		}
	}
	return false
}

// openJournal opens the -out journal (if any) and loads the completed
// cells of a previous run when -resume is set.
func openJournal(out string, resume bool) (*campaign.Journal, map[string]campaign.CellRecord) {
	if out == "" {
		return nil, nil
	}
	var done map[string]campaign.CellRecord
	if resume {
		var dropped bool
		var err error
		done, dropped, err = campaign.LoadJournal(out)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// First run of an always-resume wrapper: nothing journaled
			// yet is a fresh start, not a failure.
			fmt.Fprintf(os.Stderr, "campaign: resume: no journal at %s yet, starting fresh\n", out)
		case err != nil:
			fatal(err)
		default:
			msg := fmt.Sprintf("campaign: resume: %d journaled cells loaded from %s", len(done), out)
			if dropped {
				msg += " (dropped a truncated final line)"
			}
			fmt.Fprintln(os.Stderr, msg)
		}
	}
	j, err := campaign.OpenJournal(out)
	if err != nil {
		fatal(err)
	}
	return j, done
}

func closeJournal(j *campaign.Journal) {
	if j == nil {
		return
	}
	if err := j.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "campaign: journal:", err)
	}
}

// gridFailed reports a cancelled or partially-failed grid and exits.
// Completed cells are already in the journal (when -out is set), so the
// message points at -resume.
func gridFailed(err error, completed int, out string) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "campaign: interrupted after %d completed cells\n", completed)
	} else {
		fmt.Fprintf(os.Stderr, "campaign: %v (%d cells completed)\n", err, completed)
	}
	if out != "" {
		fmt.Fprintf(os.Stderr, "campaign: completed cells are journaled in %s; rerun with -resume to continue\n", out)
	}
	runAtExit()
	os.Exit(1)
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "campaign: "+format+"\n", args...)
	flag.Usage()
	runAtExit()
	os.Exit(2)
}

// progressReporter returns a goroutine-safe Progress callback that
// writes throttled progress/ETA lines to stderr — minutes-long grids
// should not be silent until the final tables print.
func progressReporter(label string) func(done, total int) {
	var mu sync.Mutex
	start := time.Now()
	lastPrint := start
	return func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		if done != total && now.Sub(lastPrint) < 2*time.Second {
			return
		}
		lastPrint = now
		elapsed := now.Sub(start)
		msg := fmt.Sprintf("%s: %d/%d (%.0f%%) elapsed %s", label, done, total,
			100*float64(done)/float64(total), elapsed.Round(time.Second))
		if done > 0 && done < total {
			eta := time.Duration(float64(elapsed) * float64(total-done) / float64(done))
			msg += fmt.Sprintf(" eta %s", eta.Round(time.Second))
		}
		fmt.Fprintln(os.Stderr, msg)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "campaign:", err)
	runAtExit()
	os.Exit(1)
}
