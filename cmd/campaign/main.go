// Command campaign runs the paper's full experiment campaign — every
// heuristic triple over the six Table-4 preset workloads — and prints the
// requested tables and figure series. With -robustness it instead runs
// the disruption sweep: a compact triple set under randomized node
// drains, maintenance windows and job cancellations at every intensity
// level, rendered as the robustness table.
//
// Usage:
//
//	campaign -jobs 3000                  # everything
//	campaign -jobs 3000 -table 1        # just Table 1
//	campaign -jobs 3000 -figure 4       # just Figure 4 (Curie ECDFs)
//	campaign -jobs 3000 -robustness     # disruption sweep
//
// Long campaigns are durable and cancellable: -out streams every
// completed cell to an append-only JSONL result journal, Ctrl-C stops
// the grid gracefully (in-flight simulations finish and are journaled),
// and -resume reloads the journal on restart so only the missing cells
// run — the final tables are identical to an uninterrupted run:
//
//	campaign -jobs 0 -out grid.jsonl            # interrupted with ^C...
//	campaign -jobs 0 -out grid.jsonl -resume    # ...picks up where it left off
//
// Table/figure numbers follow the paper: tables 1, 6, 7, 8 and figures
// 3, 4, 5. Progress and an ETA are reported on stderr while the grid
// runs; -perf additionally prints the per-workload performance counters
// (events, Pick calls, sim wall time) every cell records.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/workload"
)

func main() {
	jobs := flag.Int("jobs", 3000, "jobs per preset workload (0 = full Table-4 sizes; slow)")
	table := flag.Int("table", 0, "print only this table (1, 6, 7 or 8; 0 = all)")
	figure := flag.Int("figure", 0, "print only this figure (3, 4 or 5; 0 = all)")
	par := flag.Int("p", 0, "parallel simulations (0 = GOMAXPROCS)")
	robustness := flag.Bool("robustness", false, "run the disruption sweep instead of the paper tables")
	seed := flag.Uint64("seed", 1, "base seed: derives per-cell seeds, and the -robustness disruption scripts")
	out := flag.String("out", "", "append every completed cell to this JSONL result journal")
	resume := flag.Bool("resume", false, "skip cells already recorded in the -out journal")
	perf := flag.Bool("perf", false, "print per-workload performance counters to stderr")
	flag.Parse()

	// Negative values used to be silently mapped to the defaults; they
	// are almost certainly typos, so reject them loudly.
	if *jobs < 0 {
		usageError("-jobs must be >= 0 (0 = full Table-4 sizes), got %d", *jobs)
	}
	if *par < 0 {
		usageError("-p must be >= 0 (0 = GOMAXPROCS), got %d", *par)
	}
	if *resume && *out == "" {
		usageError("-resume requires -out (the journal to resume from)")
	}

	// Ctrl-C (or SIGTERM) cancels the grid gracefully: in-flight cells
	// finish and are journaled, then the run reports how to resume.
	// After the first signal the handler is unregistered, so a second
	// Ctrl-C force-quits via the default disposition instead of being
	// swallowed while in-flight cells drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	if *robustness {
		runRobustness(ctx, *jobs, *par, *seed, *out, *resume, *perf)
		return
	}

	wantTable := func(n int) bool { return (*table == 0 && *figure == 0) || *table == n }
	wantFigure := func(n int) bool { return (*table == 0 && *figure == 0) || *figure == n }

	needCampaign := wantTable(1) || wantTable(6) || wantTable(7) || wantFigure(3)
	var results []campaign.RunResult
	if needCampaign {
		ws, err := campaign.DefaultWorkloads(*jobs)
		if err != nil {
			fatal(err)
		}
		c := &campaign.Campaign{
			Workloads:   ws,
			Parallelism: *par,
			Seed:        *seed,
			Progress:    progressReporter("campaign"),
		}
		journal, done := openJournal(*out, *resume)
		c.Journal = journal
		c.Resume = done
		fmt.Fprintf(os.Stderr, "campaign: running %d simulations (%d workloads x 130 triples)...\n", len(ws)*130, len(ws))
		results, err = c.Run(ctx)
		closeJournal(journal)
		if err != nil {
			gridFailed(err, len(results), *out)
		}
		if *perf {
			fmt.Fprintln(os.Stderr, report.PerfSummary(results))
		}
	}

	if wantTable(1) {
		fmt.Println(report.Table1(results))
	}
	if wantTable(6) {
		fmt.Println(report.Table6(results))
	}
	if wantTable(7) {
		cv, err := campaign.LeaveOneOut(results)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.Table7(cv, results))
	}
	if wantFigure(3) {
		fmt.Println(report.Figure3(results, "SDSC-BLUE", "Metacentrum"))
	}

	if wantTable(8) || wantFigure(4) || wantFigure(5) {
		cfg, err := workload.Scaled("Curie", *jobs)
		if err != nil {
			fatal(err)
		}
		w, err := workload.Generate(cfg)
		if err != nil {
			fatal(err)
		}
		series, err := report.AnalyzePredictions(w)
		if err != nil {
			fatal(err)
		}
		if wantTable(8) {
			fmt.Println(report.Table8(series))
		}
		if wantFigure(4) {
			fmt.Println(report.Figure4(series))
		}
		if wantFigure(5) {
			fmt.Println(report.Figure5(series))
		}
	}
}

func runRobustness(ctx context.Context, jobs, par int, seed uint64, out string, resume, perf bool) {
	ws, err := campaign.DefaultWorkloads(jobs)
	if err != nil {
		fatal(err)
	}
	r := &campaign.Robustness{
		Workloads:   ws,
		Seed:        seed,
		Parallelism: par,
		Progress:    progressReporter("robustness"),
	}
	journal, done := openJournal(out, resume)
	r.Journal = journal
	r.Resume = done
	triples, intensities := len(campaign.DefaultRobustnessTriples()), len(scenario.Intensities)
	fmt.Fprintf(os.Stderr, "campaign: running %d disrupted simulations (%d workloads x %d triples x %d intensities)...\n",
		len(ws)*triples*intensities, len(ws), triples, intensities)
	results, err := r.Run(ctx)
	closeJournal(journal)
	if err != nil {
		gridFailed(err, len(results), out)
	}
	if perf {
		flat := make([]campaign.RunResult, len(results))
		for i, res := range results {
			flat[i] = res.RunResult
		}
		fmt.Fprintln(os.Stderr, report.PerfSummary(flat))
	}
	fmt.Println(report.RobustnessTable(results))
}

// openJournal opens the -out journal (if any) and loads the completed
// cells of a previous run when -resume is set.
func openJournal(out string, resume bool) (*campaign.Journal, map[string]campaign.CellRecord) {
	if out == "" {
		return nil, nil
	}
	var done map[string]campaign.CellRecord
	if resume {
		var dropped bool
		var err error
		done, dropped, err = campaign.LoadJournal(out)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// First run of an always-resume wrapper: nothing journaled
			// yet is a fresh start, not a failure.
			fmt.Fprintf(os.Stderr, "campaign: resume: no journal at %s yet, starting fresh\n", out)
		case err != nil:
			fatal(err)
		default:
			msg := fmt.Sprintf("campaign: resume: %d journaled cells loaded from %s", len(done), out)
			if dropped {
				msg += " (dropped a truncated final line)"
			}
			fmt.Fprintln(os.Stderr, msg)
		}
	}
	j, err := campaign.OpenJournal(out)
	if err != nil {
		fatal(err)
	}
	return j, done
}

func closeJournal(j *campaign.Journal) {
	if j == nil {
		return
	}
	if err := j.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "campaign: journal:", err)
	}
}

// gridFailed reports a cancelled or partially-failed grid and exits.
// Completed cells are already in the journal (when -out is set), so the
// message points at -resume.
func gridFailed(err error, completed int, out string) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "campaign: interrupted after %d completed cells\n", completed)
	} else {
		fmt.Fprintf(os.Stderr, "campaign: %v (%d cells completed)\n", err, completed)
	}
	if out != "" {
		fmt.Fprintf(os.Stderr, "campaign: completed cells are journaled in %s; rerun with -resume to continue\n", out)
	}
	os.Exit(1)
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "campaign: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// progressReporter returns a goroutine-safe Progress callback that
// writes throttled progress/ETA lines to stderr — minutes-long grids
// should not be silent until the final tables print.
func progressReporter(label string) func(done, total int) {
	var mu sync.Mutex
	start := time.Now()
	lastPrint := start
	return func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		if done != total && now.Sub(lastPrint) < 2*time.Second {
			return
		}
		lastPrint = now
		elapsed := now.Sub(start)
		msg := fmt.Sprintf("%s: %d/%d (%.0f%%) elapsed %s", label, done, total,
			100*float64(done)/float64(total), elapsed.Round(time.Second))
		if done > 0 && done < total {
			eta := time.Duration(float64(elapsed) * float64(total-done) / float64(done))
			msg += fmt.Sprintf(" eta %s", eta.Round(time.Second))
		}
		fmt.Fprintln(os.Stderr, msg)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "campaign:", err)
	os.Exit(1)
}
