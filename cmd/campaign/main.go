// Command campaign runs the paper's full experiment campaign — every
// heuristic triple over the six Table-4 preset workloads — and prints the
// requested tables and figure series. With -robustness it instead runs
// the disruption sweep: a compact triple set under randomized node
// drains, maintenance windows and job cancellations at every intensity
// level, rendered as the robustness table.
//
// Usage:
//
//	campaign -jobs 3000                  # everything
//	campaign -jobs 3000 -table 1        # just Table 1
//	campaign -jobs 3000 -figure 4       # just Figure 4 (Curie ECDFs)
//	campaign -jobs 3000 -robustness     # disruption sweep
//
// Table/figure numbers follow the paper: tables 1, 6, 7, 8 and figures
// 3, 4, 5. Progress and an ETA are reported on stderr while the grid
// runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/workload"
)

func main() {
	jobs := flag.Int("jobs", 3000, "jobs per preset workload (0 = full Table-4 sizes; slow)")
	table := flag.Int("table", 0, "print only this table (1, 6, 7 or 8; 0 = all)")
	figure := flag.Int("figure", 0, "print only this figure (3, 4 or 5; 0 = all)")
	par := flag.Int("p", 0, "parallel simulations (0 = GOMAXPROCS)")
	robustness := flag.Bool("robustness", false, "run the disruption sweep instead of the paper tables")
	seed := flag.Uint64("seed", 1, "disruption-script seed for -robustness")
	flag.Parse()

	if *robustness {
		runRobustness(*jobs, *par, *seed)
		return
	}

	wantTable := func(n int) bool { return (*table == 0 && *figure == 0) || *table == n }
	wantFigure := func(n int) bool { return (*table == 0 && *figure == 0) || *figure == n }

	needCampaign := wantTable(1) || wantTable(6) || wantTable(7) || wantFigure(3)
	var results []campaign.RunResult
	if needCampaign {
		ws, err := campaign.DefaultWorkloads(*jobs)
		if err != nil {
			fatal(err)
		}
		c := &campaign.Campaign{Workloads: ws, Parallelism: *par, Progress: progressReporter("campaign")}
		fmt.Fprintf(os.Stderr, "campaign: running %d simulations (%d workloads x 130 triples)...\n", len(ws)*130, len(ws))
		results, err = c.Run()
		if err != nil {
			fatal(err)
		}
	}

	if wantTable(1) {
		fmt.Println(report.Table1(results))
	}
	if wantTable(6) {
		fmt.Println(report.Table6(results))
	}
	if wantTable(7) {
		cv, err := campaign.LeaveOneOut(results)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.Table7(cv, results))
	}
	if wantFigure(3) {
		fmt.Println(report.Figure3(results, "SDSC-BLUE", "Metacentrum"))
	}

	if wantTable(8) || wantFigure(4) || wantFigure(5) {
		cfg, err := workload.Scaled("Curie", *jobs)
		if err != nil {
			fatal(err)
		}
		w, err := workload.Generate(cfg)
		if err != nil {
			fatal(err)
		}
		series, err := report.AnalyzePredictions(w)
		if err != nil {
			fatal(err)
		}
		if wantTable(8) {
			fmt.Println(report.Table8(series))
		}
		if wantFigure(4) {
			fmt.Println(report.Figure4(series))
		}
		if wantFigure(5) {
			fmt.Println(report.Figure5(series))
		}
	}
}

func runRobustness(jobs, par int, seed uint64) {
	ws, err := campaign.DefaultWorkloads(jobs)
	if err != nil {
		fatal(err)
	}
	r := &campaign.Robustness{
		Workloads:   ws,
		Seed:        seed,
		Parallelism: par,
		Progress:    progressReporter("robustness"),
	}
	triples, intensities := len(campaign.DefaultRobustnessTriples()), len(scenario.Intensities)
	fmt.Fprintf(os.Stderr, "campaign: running %d disrupted simulations (%d workloads x %d triples x %d intensities)...\n",
		len(ws)*triples*intensities, len(ws), triples, intensities)
	results, err := r.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Println(report.RobustnessTable(results))
}

// progressReporter returns a goroutine-safe Progress callback that
// writes throttled progress/ETA lines to stderr — minutes-long grids
// should not be silent until the final tables print.
func progressReporter(label string) func(done, total int) {
	var mu sync.Mutex
	start := time.Now()
	lastPrint := start
	return func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		if done != total && now.Sub(lastPrint) < 2*time.Second {
			return
		}
		lastPrint = now
		elapsed := now.Sub(start)
		msg := fmt.Sprintf("%s: %d/%d (%.0f%%) elapsed %s", label, done, total,
			100*float64(done)/float64(total), elapsed.Round(time.Second))
		if done > 0 && done < total {
			eta := time.Duration(float64(elapsed) * float64(total-done) / float64(done))
			msg += fmt.Sprintf(" eta %s", eta.Round(time.Second))
		}
		fmt.Fprintln(os.Stderr, msg)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "campaign:", err)
	os.Exit(1)
}
