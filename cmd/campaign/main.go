// Command campaign runs the paper's full experiment campaign — every
// heuristic triple over the six Table-4 preset workloads — and prints the
// requested tables and figure series.
//
// Usage:
//
//	campaign -jobs 3000                  # everything
//	campaign -jobs 3000 -table 1        # just Table 1
//	campaign -jobs 3000 -figure 4       # just Figure 4 (Curie ECDFs)
//
// Table/figure numbers follow the paper: tables 1, 6, 7, 8 and figures
// 3, 4, 5.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/campaign"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	jobs := flag.Int("jobs", 3000, "jobs per preset workload (0 = full Table-4 sizes; slow)")
	table := flag.Int("table", 0, "print only this table (1, 6, 7 or 8; 0 = all)")
	figure := flag.Int("figure", 0, "print only this figure (3, 4 or 5; 0 = all)")
	par := flag.Int("p", 0, "parallel simulations (0 = GOMAXPROCS)")
	flag.Parse()

	wantTable := func(n int) bool { return (*table == 0 && *figure == 0) || *table == n }
	wantFigure := func(n int) bool { return (*table == 0 && *figure == 0) || *figure == n }

	needCampaign := wantTable(1) || wantTable(6) || wantTable(7) || wantFigure(3)
	var results []campaign.RunResult
	if needCampaign {
		ws, err := campaign.DefaultWorkloads(*jobs)
		if err != nil {
			fatal(err)
		}
		c := &campaign.Campaign{Workloads: ws, Parallelism: *par}
		fmt.Fprintf(os.Stderr, "campaign: running %d simulations (%d workloads x 130 triples)...\n", len(ws)*130, len(ws))
		results, err = c.Run()
		if err != nil {
			fatal(err)
		}
	}

	if wantTable(1) {
		fmt.Println(report.Table1(results))
	}
	if wantTable(6) {
		fmt.Println(report.Table6(results))
	}
	if wantTable(7) {
		cv, err := campaign.LeaveOneOut(results)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.Table7(cv, results))
	}
	if wantFigure(3) {
		fmt.Println(report.Figure3(results, "SDSC-BLUE", "Metacentrum"))
	}

	if wantTable(8) || wantFigure(4) || wantFigure(5) {
		cfg, err := workload.Scaled("Curie", *jobs)
		if err != nil {
			fatal(err)
		}
		w, err := workload.Generate(cfg)
		if err != nil {
			fatal(err)
		}
		series, err := report.AnalyzePredictions(w)
		if err != nil {
			fatal(err)
		}
		if wantTable(8) {
			fmt.Println(report.Table8(series))
		}
		if wantFigure(4) {
			fmt.Println(report.Figure4(series))
		}
		if wantFigure(5) {
			fmt.Println(report.Figure5(series))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "campaign:", err)
	os.Exit(1)
}
