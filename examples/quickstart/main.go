// Quickstart: generate a synthetic workload modeled on the CTC-SP2 log,
// schedule it with plain EASY backfilling and with the paper's best
// heuristic triple (E-Loss learning + Incremental correction +
// EASY-SJBF), and compare the average bounded slowdown.
//
// Run with:
//
//	go run ./examples/quickstart              # 4000 jobs
//	go run ./examples/quickstart -jobs 50     # smoke scale
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	jobs := flag.Int("jobs", 4000, "workload size (smaller runs finish in milliseconds)")
	flag.Parse()

	// A slice of the CTC-SP2 preset: a saturated machine with heavily
	// over-estimated requested times.
	cfg, err := workload.Scaled("CTC-SP2", *jobs)
	if err != nil {
		log.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s — %d jobs on %d processors (offered load %.2f)\n\n",
		w.Name, len(w.Jobs), w.MaxProcs, w.OfferedLoad())

	for _, triple := range []core.Triple{
		core.EASY(),            // the production baseline
		core.EASYPlusPlus(),    // Tsafrir's AVE2-based variant
		core.PaperBest(),       // the paper's contribution
		core.ClairvoyantSJBF(), // the unreachable bound
	} {
		res, err := sim.Run(w, triple.Config())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-60s AVEbsld %7.1f   mean wait %6.0fs   corrections %d\n",
			triple.Name(), metrics.AVEbsld(res), metrics.MeanWait(res), res.Corrections)
	}
	fmt.Println("\nLower AVEbsld is better. The learning triple cuts the mean waiting")
	fmt.Println("time sharply; on some logs its AVEbsld is dragged by a handful of")
	fmt.Println("extreme-slowdown jobs (the paper discusses this in Section 6.5).")
	fmt.Println("Run cmd/crossval for the cross-validated triple selection of Table 7.")
}
