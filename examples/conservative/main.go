// Conservative: compare conservative backfilling (every queued job holds
// a reservation) against EASY (single reservation) under increasingly
// accurate running-time predictions — the related-work baseline the paper
// discusses in Section 2.1.
//
// The pattern to observe: conservative backfilling is more protective of
// queue order, so with loose requested times it backfills less and loses
// to EASY; accurate predictions narrow the gap for both.
//
// Run with:
//
//	go run ./examples/conservative
package main

import (
	"fmt"
	"log"

	"repro/internal/correct"
	"repro/internal/metrics"
	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	cfg, err := workload.Scaled("CTC-SP2", 3000)
	if err != nil {
		log.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s — %d jobs on %d processors\n\n", w.Name, len(w.Jobs), w.MaxProcs)

	predictors := []func() predict.Predictor{
		func() predict.Predictor { return predict.NewRequestedTime() },
		func() predict.Predictor { return predict.NewUserAverage(2) },
		func() predict.Predictor { return predict.NewClairvoyant() },
	}
	// Policies are stateful scheduling sessions: instantiate fresh state
	// for every simulation, like the predictors.
	policies := []func() sched.Policy{
		func() sched.Policy { return sched.NewEASY(sched.FCFSOrder) },
		func() sched.Policy { return sched.NewEASY(sched.SJBFOrder) },
		func() sched.Policy { return sched.NewConservative() },
		func() sched.Policy { return sched.NewFCFS() },
	}

	fmt.Printf("%-14s", "AVEbsld")
	for _, p := range policies {
		fmt.Printf(" %14s", p().Name())
	}
	fmt.Println()
	for _, mk := range predictors {
		name := mk().Name()
		fmt.Printf("%-14s", name)
		for _, p := range policies {
			res, err := sim.Run(w, sim.Config{
				Policy:    p(),
				Predictor: mk(),
				Corrector: correct.Incremental{},
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %14.1f", metrics.AVEbsld(res))
		}
		fmt.Println()
	}
	fmt.Println("\nEach row is one prediction technique; each column one policy.")
	fmt.Println("FCFS (no backfilling) shows what backfilling buys; conservative")
	fmt.Println("sits between FCFS and EASY in aggressiveness.")
}
