// Compare: a miniature Table 6 — run every combination of prediction
// technique, correction mechanism and backfilling variant on one
// workload and rank the heuristic triples by AVEbsld.
//
// Run with:
//
//	go run ./examples/compare            # SDSC-SP2 preset
//	go run ./examples/compare Curie      # any preset name
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	preset := "SDSC-SP2"
	if len(os.Args) > 1 {
		preset = os.Args[1]
	}
	cfg, err := workload.Scaled(preset, 3000)
	if err != nil {
		log.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	c := &campaign.Campaign{Workloads: []*trace.Workload{w}}
	fmt.Printf("running the full 130-triple campaign on %s (%d jobs, %d procs)...\n\n",
		w.Name, len(w.Jobs), w.MaxProcs)
	results, err := c.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(results, func(a, b int) bool { return results[a].AVEbsld < results[b].AVEbsld })

	fmt.Println("ten best heuristic triples:")
	for i := 0; i < 10 && i < len(results); i++ {
		r := results[i]
		fmt.Printf("  %2d. %-62s AVEbsld %7.1f  (max %8.0f, corrections %d)\n",
			i+1, r.Triple.Name(), r.AVEbsld, r.MaxBsld, r.Corrections)
	}

	fmt.Println("\nreference triples:")
	for _, tr := range []core.Triple{core.EASY(), core.EASYPlusPlus(), core.PaperBest(), core.ClairvoyantSJBF()} {
		if s, ok := campaign.Score(results, w.Name, tr.Name()); ok {
			fmt.Printf("  %-64s AVEbsld %7.1f\n", tr.Name(), s)
		}
	}
}
