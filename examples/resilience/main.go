// Resilience: inject dynamic platform and workload events — a
// maintenance window that drains half the machine, node failures, and
// job cancellations — into a simulation and measure how much of the
// paper's learned-prediction advantage survives the churn.
//
// Part 1 walks one hand-written scenario (built with the composable
// scenario.Builder DSL) through the paper's best triple and prints the
// realized capacity timeline the engine recorded. Part 2 runs the
// robustness sweep — the compact triple set under randomized disruption
// scripts at every intensity level — and renders the robustness table.
//
// The pattern to observe: disruptions hurt every heuristic, but the
// ordering usually survives — learned predictions keep their edge over
// plain EASY under platform churn, which is the property the
// -robustness campaign quantifies across all presets.
//
// Run with:
//
//	go run ./examples/resilience
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	cfg, err := workload.Scaled("KTH-SP2", 2000)
	if err != nil {
		log.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s — %d jobs on %d processors\n\n", w.Name, len(w.Jobs), w.MaxProcs)

	// --- Part 1: one explicit scenario through the scenario DSL -------
	//
	// A third of the trace in, half the machine goes down for
	// maintenance; mid-window another two nodes fail and recover only
	// much later; meanwhile three early jobs are cancelled.
	span := w.Duration()
	script := scenario.NewBuilder("maintenance+failures").
		Maintenance(span/3, span/3+span/10, w.MaxProcs/2).
		Drain(span/3+span/20, 2).
		Restore(2*span/3, 2).
		Cancel(w.Jobs[10].SubmitTime+30, w.Jobs[10].JobNumber).
		Cancel(w.Jobs[11].SubmitTime+1000, w.Jobs[11].JobNumber).
		Cancel(w.Jobs[12].SubmitTime+5000, w.Jobs[12].JobNumber).
		MustBuild()

	fmt.Printf("scenario %q: min eventual capacity %d of %d procs\n",
		script.Name, script.MinEventualCapacity(w.MaxProcs), w.MaxProcs)

	for _, triple := range []core.Triple{core.EASY(), core.PaperBest()} {
		simCfg := triple.Config()
		simCfg.Script = script
		res, err := sim.Run(w, simCfg)
		if err != nil {
			log.Fatal(err)
		}
		if errs := sim.ValidateResult(res); len(errs) != 0 {
			log.Fatalf("invalid schedule: %v", errs[0])
		}
		fmt.Printf("  %-58s AVEbsld %6.1f  (%d jobs canceled)\n", res.Triple, metrics.AVEbsld(res), res.Canceled)
		if triple.Predictor == core.PredLearning {
			fmt.Println("  realized capacity timeline:")
			for _, step := range res.CapacitySteps {
				fmt.Printf("    t=%-8d %d procs in service\n", step.At, step.Capacity)
			}
		}
	}

	// --- Part 2: the robustness sweep ---------------------------------
	fmt.Println("\nrunning the robustness sweep (randomized scripts, all intensities)...")
	r := &campaign.Robustness{Workloads: []*trace.Workload{w}, Seed: 1}
	results, err := r.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.RobustnessTable(results))
}
