// Customloss: build your own asymmetric loss function, train the
// on-line regression model with it, and inspect the resulting prediction
// profile against the paper's E-Loss and a symmetric squared loss.
//
// The experiment mirrors Section 6.4: the loss you train with shapes the
// error distribution — a squared over-prediction branch pushes the model
// toward under-prediction, and the per-job weights choose which jobs it
// works hardest to get right.
//
// Run with:
//
//	go run ./examples/customloss
package main

import (
	"fmt"
	"log"

	"repro/internal/job"
	"repro/internal/ml"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	cfg, err := workload.Scaled("Curie", 4000)
	if err != nil {
		log.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A custom member of the Section-4 loss family: squared on both
	// branches but weighted toward small-area jobs — "predict the easy
	// backfill candidates well".
	custom := ml.Loss{Over: ml.Squared, Under: ml.Squared, Weight: ml.WeightSmallArea}

	fmt.Printf("progressive-validation prediction profile on %s (%d jobs):\n\n", w.Name, len(w.Jobs))
	fmt.Printf("%-40s %10s %10s %8s\n", "loss", "MAE(s)", "E-Loss", "under%")
	for _, loss := range []ml.Loss{ml.SquaredLoss, ml.ELoss, custom} {
		mae, eloss, under := trainAndScore(w, loss)
		fmt.Printf("%-40s %10.0f %10.3g %7.1f%%\n", loss.Name(), mae, eloss, 100*under)
	}
	fmt.Println("\nThe E-Loss trades MAE for fewer over-predictions — exactly the")
	fmt.Println("trade Section 6.4 argues benefits aggressive SJBF backfilling.")
}

// trainAndScore replays the workload in submission order (completions at
// submit+runtime, as if the machine were infinitely wide), training
// on-line and scoring the prediction made for each job before its update.
func trainAndScore(w *trace.Workload, loss ml.Loss) (mae, meanELoss, underFrac float64) {
	model := ml.NewModel(ml.DefaultConfig(loss))
	tracker := ml.NewTracker()

	type completion struct {
		at int64
		j  *job.Job
		x  []float64
	}
	var pending []completion
	var absSum, elossSum float64
	under, n := 0, 0
	for i := range w.Jobs {
		rec := &w.Jobs[i]
		j := job.FromSWF(rec)
		// Retire completions that happened before this submission.
		keep := pending[:0]
		for _, c := range pending {
			if c.at <= j.Submit {
				model.Observe(c.x, float64(c.j.Runtime), float64(c.j.Procs))
				tracker.OnFinish(c.j, c.at)
			} else {
				keep = append(keep, c)
			}
		}
		pending = keep

		x := tracker.Features(j, j.Submit)
		pred := j.ClampPrediction(int64(model.Predict(x)))
		diff := float64(pred - j.Runtime)
		if diff < 0 {
			diff = -diff
			under++
		}
		absSum += diff
		elossSum += ml.ELoss.Eval(float64(pred), float64(j.Runtime), float64(j.Procs))
		n++

		tracker.OnSubmit(j)
		j.Start = j.Submit
		tracker.OnStart(j)
		pending = append(pending, completion{at: j.Submit + j.Runtime, j: j, x: x})
	}
	return absSum / float64(n), elossSum / float64(n), float64(under) / float64(n)
}
