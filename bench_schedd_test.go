package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/schedd"
)

// BenchmarkScheddIntake measures the live daemon's submission path:
// one op is a full HTTP round trip — JSON encode, POST /v1/jobs,
// validate, enqueue into the sequencer — against an in-process server.
// This is the daemon's intake ceiling; the scheduling work itself is
// deferred to the engine goroutine and measured by the sim benchmarks.
func BenchmarkScheddIntake(b *testing.B) {
	d, err := schedd.New(schedd.Options{Workload: "bench", MaxProcs: 1 << 20, Triple: core.EASYPlusPlus()})
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	defer d.Shutdown()
	hc := srv.Client()

	scheddPost(b, hc, srv.URL+"/v1/sessions", map[string]string{"session": "bench"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := int64(i + 1)
		scheddPost(b, hc, srv.URL+"/v1/jobs", schedd.SubmitRequest{Session: "bench", Job: schedd.JobSpec{
			Number: t, Submit: t, Procs: 1, Request: 100, Runtime: 50,
		}})
	}
	b.StopTimer()
}

func scheddPost(b *testing.B, hc *http.Client, url string, body any) {
	b.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := hc.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		b.Fatal(fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, msg))
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
